//! End-to-end tests of the `mqce serve` daemon: concurrent requests match
//! the single-process pipeline, repeated requests hit the result cache (and
//! are an order of magnitude faster than the cold run), spent deadlines
//! return promptly flagged best-effort, and the CLI `serve`/`client`
//! sub-commands drive the whole loop over a Unix socket.
//!
//! The fault-containment half: injected panics (request-handler, lock-held,
//! and in-worker via `--fault-injection`) leave the daemon serving with
//! intact cache accounting, oversized request lines are rejected without
//! harm, a seeded protocol-line fuzzer cannot kill the daemon, and a
//! SIGKILLed `--wal` daemon restarts to the exact pre-crash fingerprint and
//! family.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use mqce_cli::protocol::{Request, Response};
use mqce_cli::serve::{serve_tcp, ServeSettings, ServeSummary};
use mqce_core::{find_mqcs_containing, MqceConfig, Session};
use mqce_graph::generators::{community_graph, CommunityGraphParams};
use mqce_graph::Graph;

/// Community graphs with ~10-vertex dense communities: large enough that a
/// cold enumeration does real work, small enough per community that the
/// maximal-QC family stays bounded (larger dense-but-incomplete communities
/// make the family explode combinatorially, which would swamp a debug-mode
/// test run).
fn test_graph(n: usize, seed: u64) -> Graph {
    community_graph(
        CommunityGraphParams {
            n,
            num_communities: (n / 10).max(2),
            p_intra: 0.9,
            inter_degree: 1.0,
        },
        seed,
    )
}

fn start_daemon(
    graph: Graph,
    settings: ServeSettings,
) -> (SocketAddr, thread::JoinHandle<ServeSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let handle = thread::spawn(move || serve_tcp(listener, graph, settings));
    (addr, handle)
}

/// One request/response exchange on its own connection.
fn roundtrip(addr: SocketAddr, request: &Request) -> Response {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writer
        .write_all(format!("{}\n", request.to_line()).as_bytes())
        .expect("send request");
    writer.flush().expect("flush request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    Response::parse_line(line.trim_end()).expect("parse response")
}

fn shutdown(addr: SocketAddr) {
    let request = Request {
        cmd: "shutdown".to_string(),
        ..Request::default()
    };
    assert!(roundtrip(addr, &request).ok);
}

#[test]
fn concurrent_requests_match_the_single_process_pipeline() {
    let graph = test_graph(500, 42);
    let config_a = MqceConfig::new(0.9, 4).unwrap();
    let config_b = MqceConfig::new(0.85, 5).unwrap();
    let expected_a = Session::open(graph.clone()).config(config_a).run().mqcs;
    let expected_b = Session::open(graph.clone()).config(config_b).run().mqcs;
    let expected_q = find_mqcs_containing(&graph, &[0, 1], &config_a)
        .expect("query succeeds")
        .mqcs;

    let (addr, handle) = start_daemon(graph, ServeSettings::default());

    let request_a = Request {
        gamma: 0.9,
        theta: 4,
        sets: true,
        ..Request::default()
    };
    let request_b = Request {
        gamma: 0.85,
        theta: 5,
        sets: true,
        ..Request::default()
    };
    let request_q = Request {
        cmd: "query".to_string(),
        gamma: 0.9,
        theta: 4,
        vertices: vec![0, 1],
        sets: true,
        ..Request::default()
    };

    // Mixed identical and distinct requests, each on its own connection,
    // all in flight at once (admission control queues the excess).
    thread::scope(|scope| {
        let mut workers = Vec::new();
        for i in 0..9 {
            let (request, expected) = match i % 3 {
                0 => (&request_a, &expected_a),
                1 => (&request_b, &expected_b),
                _ => (&request_q, &expected_q),
            };
            workers.push(scope.spawn(move || {
                let response = roundtrip(addr, request);
                assert!(response.ok, "error: {:?}", response.error);
                assert!(!response.best_effort);
                assert_eq!(response.count, expected.len());
                assert_eq!(response.mqcs.as_ref(), Some(expected));
            }));
        }
        for worker in workers {
            worker.join().expect("worker panicked");
        }
    });

    // A repeat of an already-answered request is served from the cache, and
    // the count-only variant reuses the same entry (presentation knobs are
    // not part of the cache key).
    let repeat = roundtrip(addr, &request_a);
    assert!(
        repeat.cached,
        "second identical request must be a cache hit"
    );
    assert_eq!(repeat.mqcs.as_ref(), Some(&expected_a));
    let count_only = Request {
        sets: false,
        ..request_a.clone()
    };
    let counted = roundtrip(addr, &count_only);
    assert!(counted.cached);
    assert_eq!(counted.count, expected_a.len());
    assert!(counted.mqcs.is_none());

    // Ping reports the running totals.
    let ping = roundtrip(
        addr,
        &Request {
            cmd: "ping".to_string(),
            ..Request::default()
        },
    );
    assert!(ping.ok);
    assert!(ping.extra_str("fingerprint").is_some());
    assert!(ping.extra_num("cache_hits").unwrap_or(0.0) >= 2.0);

    shutdown(addr);
    let summary = handle.join().expect("daemon thread");
    assert!(summary.requests >= 13);
    assert!(summary.cache_hits >= 2);
    assert_eq!(summary.errors, 0);
}

#[test]
fn cache_hits_are_an_order_of_magnitude_faster_than_cold_runs() {
    // Big enough that a cold enumeration takes real time; the warm answer is
    // a hash lookup and must be at least 10x faster.
    let graph = test_graph(800, 7);
    let (addr, handle) = start_daemon(graph, ServeSettings::default());
    let request = Request {
        gamma: 0.9,
        theta: 4,
        ..Request::default()
    };
    let cold = roundtrip(addr, &request);
    assert!(cold.ok && !cold.cached);
    let warm = roundtrip(addr, &request);
    assert!(warm.ok && warm.cached);
    assert_eq!(warm.count, cold.count);
    assert!(
        warm.elapsed_ms * 10.0 <= cold.elapsed_ms,
        "cache hit not 10x faster: cold={}ms warm={}ms",
        cold.elapsed_ms,
        warm.elapsed_ms
    );
    shutdown(addr);
    handle.join().expect("daemon thread");
}

#[test]
fn spent_deadlines_return_promptly_and_are_flagged_best_effort() {
    let graph = test_graph(800, 11);
    let (addr, handle) = start_daemon(graph, ServeSettings::default());
    let request = Request {
        gamma: 0.9,
        theta: 4,
        deadline_ms: Some(1),
        no_cache: true,
        ..Request::default()
    };
    let start = Instant::now();
    let response = roundtrip(addr, &request);
    let elapsed = start.elapsed();
    assert!(response.ok, "error: {:?}", response.error);
    assert!(
        response.best_effort,
        "a 1ms-deadline answer must be flagged best-effort"
    );
    // Prompt: well under the cold enumeration time (bounded by the S2 grace
    // slice plus scheduling noise, not by the size of the search).
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");

    // Best-effort answers must not poison the cache.
    let fresh = roundtrip(
        addr,
        &Request {
            deadline_ms: None,
            no_cache: false,
            ..request.clone()
        },
    );
    assert!(fresh.ok && !fresh.cached);
    shutdown(addr);
    handle.join().expect("daemon thread");
}

#[test]
fn updates_rekey_the_cache_and_match_a_fresh_run() {
    use mqce_graph::{dirty_two_hop_closure, GraphDelta, SubproblemScratch};

    let graph = test_graph(300, 9);
    let config = MqceConfig::new(0.9, 4).unwrap();

    // Build the batch locally first: delete one edge and insert one non-edge
    // in the high-vertex region, then compute the dirty two-hop closure so
    // the test can pick a provably unaffected query vertex.
    let deleted = graph
        .edges()
        .find(|&(u, _)| u >= 250)
        .expect("the community graph has edges among high vertices");
    let inserted = (250..300u32)
        .flat_map(|u| (250..300u32).map(move |v| (u, v)))
        .find(|&(u, v)| u < v && !graph.has_edge(u, v))
        .expect("some high-vertex non-edge exists");
    let delta = GraphDelta::new(vec![inserted], vec![deleted]);
    let mutated = delta.apply(&graph);
    let mut scratch = SubproblemScratch::new();
    let dirty = dirty_two_hop_closure(&graph, &mutated, &delta, &mut scratch);
    let clean_v = (0..graph.num_vertices() as u32)
        .find(|v| dirty.binary_search(v).is_err())
        .expect("some vertex is outside the dirty closure");
    let dirty_v = *dirty.first().expect("the closure is non-empty");

    let expected_clean = find_mqcs_containing(&graph, &[clean_v], &config)
        .expect("query succeeds")
        .mqcs;
    let expected_after = Session::open(mutated.clone()).config(config).run().mqcs;

    let (addr, handle) = start_daemon(graph, ServeSettings::default());
    let query = |v: u32| Request {
        cmd: "query".to_string(),
        gamma: 0.9,
        theta: 4,
        vertices: vec![v],
        sets: true,
        ..Request::default()
    };

    // Warm the cache: one query far from the update, one inside its closure.
    let cold_clean = roundtrip(addr, &query(clean_v));
    assert!(cold_clean.ok && !cold_clean.cached);
    assert_eq!(cold_clean.mqcs.as_ref(), Some(&expected_clean));
    let cold_dirty = roundtrip(addr, &query(dirty_v));
    assert!(cold_dirty.ok && !cold_dirty.cached);

    // Apply the update.
    let update = roundtrip(
        addr,
        &Request {
            cmd: "update".to_string(),
            insert: vec![inserted],
            delete: vec![deleted],
            ..Request::default()
        },
    );
    assert!(update.ok, "update failed: {:?}", update.error);
    let new_fp = format!("{:016x}", mutated.fingerprint());
    assert_eq!(update.extra_str("fingerprint"), Some(new_fp.as_str()));
    assert_ne!(
        update.extra_str("fingerprint"),
        update.extra_str("previous_fingerprint"),
        "the fingerprint must change with the graph"
    );
    assert_eq!(update.extra_num("updates_applied"), Some(2.0));
    assert_eq!(update.extra_num("dirty"), Some(dirty.len() as f64));
    assert!(update.extra_num("cache_invalidated").unwrap_or(0.0) >= 1.0);
    assert!(update.extra_num("cache_kept").unwrap_or(0.0) >= 1.0);

    // The unaffected query survived the re-key: same answer, still cached.
    let warm_clean = roundtrip(addr, &query(clean_v));
    assert!(
        warm_clean.cached,
        "a query outside the dirty closure must stay cached across the update"
    );
    assert_eq!(warm_clean.mqcs.as_ref(), Some(&expected_clean));

    // The query inside the closure was invalidated and recomputes against
    // the mutated graph.
    let recomputed = roundtrip(addr, &query(dirty_v));
    assert!(recomputed.ok && !recomputed.cached);
    let expected_dirty = find_mqcs_containing(&mutated, &[dirty_v], &config)
        .expect("query succeeds")
        .mqcs;
    assert_eq!(recomputed.mqcs.as_ref(), Some(&expected_dirty));

    // A full enumeration now equals a fresh run on the mutated graph.
    let after = roundtrip(
        addr,
        &Request {
            gamma: 0.9,
            theta: 4,
            sets: true,
            ..Request::default()
        },
    );
    assert!(after.ok && !after.cached);
    assert_eq!(after.mqcs.as_ref(), Some(&expected_after));

    // Ping reports the new fingerprint and the cache counters moved.
    let ping = roundtrip(
        addr,
        &Request {
            cmd: "ping".to_string(),
            ..Request::default()
        },
    );
    assert_eq!(ping.extra_str("fingerprint"), Some(new_fp.as_str()));
    assert!(ping.extra_num("cache_evictions").unwrap_or(0.0) >= 1.0);
    assert!(ping.extra_num("cache_misses").unwrap_or(0.0) >= 3.0);

    shutdown(addr);
    let summary = handle.join().expect("daemon thread");
    assert_eq!(summary.errors, 0);
    assert!(summary.cache_hits >= 1);
    assert!(summary.cache_misses >= 3);
    assert!(summary.cache_evictions >= 1);
    assert!(summary.cache_len >= 1);
}

#[test]
fn malformed_and_invalid_requests_get_error_responses() {
    let graph = test_graph(500, 5);
    let (addr, handle) = start_daemon(graph, ServeSettings::default());

    // Malformed JSON and bad parameters produce ok=false without killing
    // the connection or the daemon.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    for (line, expect_ok) in [
        ("this is not json", false),
        (r#"{"cmd":"enumerate","gamma":0.2}"#, false), // gamma < 0.5
        (r#"{"cmd":"query","gamma":0.9}"#, false),     // no vertices
        (r#"{"cmd":"enumerate","gamma":0.9,"theta":4}"#, true),
    ] {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let response = Response::parse_line(response.trim_end()).unwrap();
        assert_eq!(response.ok, expect_ok, "line: {line}");
        if !expect_ok {
            assert!(response.error.is_some());
        }
    }

    shutdown(addr);
    let summary = handle.join().expect("daemon thread");
    assert_eq!(summary.errors, 3);
}

#[test]
fn injected_faults_are_contained_and_the_daemon_keeps_serving() {
    let graph = test_graph(60, 21);
    let expected = Session::open(graph.clone())
        .config(MqceConfig::new(0.9, 4).unwrap())
        .run()
        .mqcs;
    let (addr, handle) = start_daemon(
        graph,
        ServeSettings {
            fault_injection: true,
            ..ServeSettings::default()
        },
    );
    let enumerate = Request {
        gamma: 0.9,
        theta: 4,
        sets: true,
        ..Request::default()
    };

    // Warm the cache so the post-fault accounting has something to protect.
    let cold = roundtrip(addr, &enumerate);
    assert!(cold.ok && !cold.cached);
    assert_eq!(cold.mqcs.as_ref(), Some(&expected));

    // A handler panic becomes a typed internal-error response on the same
    // connection; the daemon keeps serving.
    for mode in ["panic", "panic-locked"] {
        let fault = Request {
            fault: Some(mode.to_string()),
            ..enumerate.clone()
        };
        let response = roundtrip(addr, &fault);
        assert!(!response.ok, "fault {mode} must produce an error response");
        assert_eq!(response.extra_str("error_kind"), Some("internal"));
        assert!(
            response
                .error
                .as_deref()
                .is_some_and(|e| e.contains("panicked")),
            "error should say the handler panicked: {:?}",
            response.error
        );
    }

    // `panic-locked` poisoned the cache mutex while holding it; recovery
    // clears the cache (never serves a possibly-torn entry), so the warmed
    // entry is gone — but the daemon answers correctly and re-caches.
    let after = roundtrip(addr, &enumerate);
    assert!(after.ok, "error: {:?}", after.error);
    assert!(
        !after.cached,
        "the poisoned cache must have been cleared, not served"
    );
    assert_eq!(after.mqcs.as_ref(), Some(&expected));
    let warm = roundtrip(addr, &enumerate);
    assert!(
        warm.ok && warm.cached,
        "the recovered cache must fill again"
    );

    // An in-worker panic (inside the DC search) is contained per-subproblem:
    // the response succeeds, is flagged best-effort, and reports the anchor.
    // Not every vertex anchors an executing subproblem, so probe until one
    // panics.
    let mut contained = None;
    for v in 0..60u32 {
        let fault = Request {
            fault: Some(format!("panic-worker:{v}")),
            ..enumerate.clone()
        };
        let response = roundtrip(addr, &fault);
        assert!(
            response.ok,
            "worker fault must not fail: {:?}",
            response.error
        );
        assert!(
            !response.cached,
            "fault requests must bypass the cache entirely"
        );
        if response.extra_num("contained_panics").unwrap_or(0.0) >= 1.0 {
            assert!(response.best_effort, "a lossy answer must be best-effort");
            assert_eq!(response.extra_num("panicked_anchor"), Some(v as f64));
            contained = Some(response);
            break;
        }
    }
    let contained = contained.expect("some vertex anchors an executing subproblem");
    // The surviving family is a subset of the true one.
    for set in contained.mqcs.as_deref().unwrap_or(&[]) {
        assert!(expected.contains(set), "torn output {set:?}");
    }

    // Cache accounting survived all of it: the cached entry still answers.
    let still_warm = roundtrip(addr, &enumerate);
    assert!(still_warm.ok && still_warm.cached);
    assert_eq!(still_warm.mqcs.as_ref(), Some(&expected));

    shutdown(addr);
    let summary = handle.join().expect("daemon thread");
    assert_eq!(summary.errors, 2, "exactly the two injected handler faults");
    assert!(summary.cache_hits >= 2);
}

#[test]
fn fault_requests_are_refused_without_the_flag() {
    let graph = test_graph(60, 22);
    let (addr, handle) = start_daemon(graph, ServeSettings::default());
    let response = roundtrip(
        addr,
        &Request {
            gamma: 0.9,
            theta: 4,
            fault: Some("panic".to_string()),
            ..Request::default()
        },
    );
    assert!(!response.ok);
    assert!(
        response
            .error
            .as_deref()
            .is_some_and(|e| e.contains("fault injection is disabled")),
        "got: {:?}",
        response.error
    );
    shutdown(addr);
    handle.join().expect("daemon thread");
}

#[test]
fn oversized_request_lines_are_rejected_and_the_daemon_survives() {
    let graph = test_graph(60, 23);
    let (addr, handle) = start_daemon(graph, ServeSettings::default());

    // Slightly over the 1 MiB line cap: small enough to fit in socket
    // buffers even though the server stops reading mid-line.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let oversized = "x".repeat((1 << 20) + 4096);
    writer.write_all(oversized.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = Response::parse_line(line.trim_end()).expect("parse error response");
    assert!(!response.ok);
    assert!(
        response
            .error
            .as_deref()
            .is_some_and(|e| e.contains("exceeds")),
        "got: {:?}",
        response.error
    );
    // The connection is dropped after the refusal…
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    // …but the daemon itself keeps serving fresh connections.
    let ping = roundtrip(
        addr,
        &Request {
            cmd: "ping".to_string(),
            ..Request::default()
        },
    );
    assert!(ping.ok);

    shutdown(addr);
    let summary = handle.join().expect("daemon thread");
    assert_eq!(summary.errors, 1);
}

/// Seeded protocol-line fuzz: random garbage and mutated valid requests,
/// first through `Request::parse_line` under `catch_unwind` (the parser must
/// never panic), then through a live daemon (every line gets exactly one
/// well-formed response and the daemon outlives all of it).
#[test]
fn protocol_line_fuzz_never_panics_the_parser_or_kills_the_daemon() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0xF00D);
    let base_lines = [
        Request {
            gamma: 0.9,
            theta: 4,
            sets: true,
            ..Request::default()
        }
        .to_line(),
        Request {
            cmd: "query".to_string(),
            gamma: 0.85,
            theta: 3,
            vertices: vec![0, 1, 2],
            ..Request::default()
        }
        .to_line(),
        Request {
            cmd: "update".to_string(),
            insert: vec![(0, 5)],
            delete: vec![(1, 2)],
            ..Request::default()
        }
        .to_line(),
    ];
    const POOL: &[char] = &[
        '{', '}', '[', ']', '"', ':', ',', '.', '-', '\\', '0', '7', '9', 'a', 'z', 'µ', '∞', ' ',
        '\t', 'n', 'e',
    ];
    let mutate = |rng: &mut StdRng| -> String {
        let mut line: Vec<char> = if rng.gen_bool(0.5) {
            // Mutate a valid request line.
            base_lines[rng.gen_range(0..base_lines.len())]
                .chars()
                .collect()
        } else {
            // Pure random garbage.
            (0..rng.gen_range(0..120))
                .map(|_| POOL[rng.gen_range(0..POOL.len())])
                .collect()
        };
        for _ in 0..rng.gen_range(1..8) {
            if line.is_empty() {
                line.push(POOL[rng.gen_range(0..POOL.len())]);
                continue;
            }
            let at = rng.gen_range(0..line.len());
            match rng.gen_range(0..4) {
                0 => line[at] = POOL[rng.gen_range(0..POOL.len())],
                1 => {
                    line.insert(at, POOL[rng.gen_range(0..POOL.len())]);
                }
                2 => {
                    line.remove(at);
                }
                _ => line.truncate(at),
            }
        }
        let mut line: String = line
            .into_iter()
            .filter(|&c| c != '\n' && c != '\r')
            .collect();
        // The daemon silently skips whitespace-only lines (no response), so
        // a blank line would deadlock the one-response-per-line loop below.
        if line.trim().is_empty() {
            line.push('{');
        }
        line
    };

    let lines: Vec<String> = (0..400).map(|_| mutate(&mut rng)).collect();

    // Parser half: must return Ok or Err, never unwind.
    for line in &lines {
        let parsed = std::panic::catch_unwind(|| Request::parse_line(line));
        assert!(parsed.is_ok(), "parse_line panicked on {line:?}");
    }

    // Daemon half: one response per line, daemon survives all of them.
    let graph = test_graph(60, 24);
    let (addr, handle) = start_daemon(graph, ServeSettings::default());
    for chunk in lines.chunks(50) {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        for line in chunk {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut response = String::new();
            assert!(
                reader.read_line(&mut response).unwrap() > 0,
                "daemon closed the connection on {line:?}"
            );
            Response::parse_line(response.trim_end())
                .unwrap_or_else(|e| panic!("unparseable response to {line:?}: {e}"));
        }
    }

    // A real request still works afterwards.
    let sane = roundtrip(
        addr,
        &Request {
            gamma: 0.9,
            theta: 4,
            ..Request::default()
        },
    );
    assert!(sane.ok, "error: {:?}", sane.error);
    shutdown(addr);
    handle.join().expect("daemon thread");
}

/// SIGKILL the daemon mid-life and restart it with the same `--wal`: the
/// replayed log must land on the exact pre-crash fingerprint and family.
#[cfg(unix)]
#[test]
fn sigkilled_daemon_recovers_its_state_from_the_wal() {
    use std::os::unix::net::UnixStream;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("mqce_wal_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("graph.txt");
    let sock = dir.join("daemon.sock");
    let wal = dir.join("updates.wal");
    let _ = std::fs::remove_file(&sock);
    let _ = std::fs::remove_file(&wal);

    let graph = test_graph(60, 25);
    mqce_cli::save_graph(&graph, graph_path.to_str().unwrap()).unwrap();
    let loaded = mqce_cli::load_graph(graph_path.to_str().unwrap()).unwrap();

    let spawn_daemon = || {
        Command::new(env!("CARGO_BIN_EXE_mqce"))
            .args([
                "serve",
                graph_path.to_str().unwrap(),
                "--socket",
                sock.to_str().unwrap(),
                "--wal",
                wal.to_str().unwrap(),
                "--quiet",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn daemon process")
    };
    let wait_ready = || {
        for _ in 0..400 {
            if UnixStream::connect(&sock).is_ok() {
                return;
            }
            thread::sleep(Duration::from_millis(25));
        }
        panic!("daemon did not come up on {}", sock.display());
    };
    let unix_roundtrip = |request: &Request| -> Response {
        let stream = UnixStream::connect(&sock).expect("connect to daemon");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        writer
            .write_all(format!("{}\n", request.to_line()).as_bytes())
            .expect("send request");
        writer.flush().expect("flush request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        Response::parse_line(line.trim_end()).expect("parse response")
    };

    let mut child = spawn_daemon();
    wait_ready();

    // Two updates, each durably logged before it is applied.
    let (du, dv) = loaded.edges().next().expect("graph has edges");
    let non_edges: Vec<(u32, u32)> = (0..loaded.num_vertices() as u32)
        .flat_map(|u| (0..loaded.num_vertices() as u32).map(move |v| (u, v)))
        .filter(|&(u, v)| u < v && !loaded.has_edge(u, v))
        .take(2)
        .collect();
    let mut offsets = Vec::new();
    for (i, batch) in [
        (vec![non_edges[0]], vec![(du, dv)]),
        (vec![non_edges[1]], vec![]),
    ]
    .iter()
    .enumerate()
    {
        let response = unix_roundtrip(&Request {
            cmd: "update".to_string(),
            insert: batch.0.clone(),
            delete: batch.1.clone(),
            ..Request::default()
        });
        assert!(response.ok, "update {i} failed: {:?}", response.error);
        let offset = response
            .extra_num("wal_offset")
            .expect("update must report its WAL offset");
        offsets.push(offset);
    }
    assert!(offsets[1] > offsets[0], "the WAL must grow monotonically");

    let enumerate = Request {
        gamma: 0.9,
        theta: 4,
        sets: true,
        ..Request::default()
    };
    let ping = Request {
        cmd: "ping".to_string(),
        ..Request::default()
    };
    let pre_fp = unix_roundtrip(&ping)
        .extra_str("fingerprint")
        .expect("ping reports a fingerprint")
        .to_string();
    let pre_family = unix_roundtrip(&enumerate).mqcs.expect("sets requested");

    // SIGKILL: no destructors, no socket cleanup, no WAL finalisation.
    child.kill().expect("kill daemon");
    child.wait().expect("reap daemon");
    let _ = std::fs::remove_file(&sock);

    let mut child = spawn_daemon();
    wait_ready();
    let post_fp = unix_roundtrip(&ping)
        .extra_str("fingerprint")
        .expect("ping reports a fingerprint")
        .to_string();
    assert_eq!(post_fp, pre_fp, "WAL replay must restore the fingerprint");
    let post = unix_roundtrip(&enumerate);
    assert!(
        post.ok && !post.cached,
        "a fresh process has an empty cache"
    );
    assert_eq!(
        post.mqcs.as_ref(),
        Some(&pre_family),
        "WAL replay must restore the exact family"
    );

    assert!(
        unix_roundtrip(&Request {
            cmd: "shutdown".to_string(),
            ..Request::default()
        })
        .ok
    );
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown after recovery");
}

/// Drives the real CLI sub-commands over a Unix socket: `serve` in a
/// background thread, `client` for ping / enumerate / shutdown.
#[cfg(unix)]
#[test]
fn cli_serve_and_client_roundtrip_over_unix_socket() {
    let dir = std::env::temp_dir().join("mqce_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("daemon_graph.txt");
    let sock_path = dir.join(format!("daemon_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock_path);

    let graph = test_graph(500, 5);
    mqce_cli::save_graph(&graph, graph_path.to_str().unwrap()).unwrap();
    // The edge-list roundtrip relabels vertices, so the expectation must
    // come from the file the daemon will load, not the in-memory graph.
    let loaded = mqce_cli::load_graph(graph_path.to_str().unwrap()).unwrap();
    let expected = Session::open(loaded.clone())
        .config(MqceConfig::new(0.9, 4).unwrap())
        .run()
        .mqcs;

    let argv = |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
    let serve_args = argv(&[
        "serve",
        graph_path.to_str().unwrap(),
        "--socket",
        sock_path.to_str().unwrap(),
        "--quiet",
    ]);
    let server = thread::spawn(move || {
        let mut sink = Vec::new();
        mqce_cli::run(&serve_args, &mut sink).expect("serve runs to clean shutdown");
    });

    let client = |parts: &[&str]| -> String {
        let mut full = vec![
            "client".to_string(),
            "--socket".to_string(),
            sock_path.to_str().unwrap().to_string(),
            "--retry-secs".to_string(),
            "10".to_string(),
        ];
        full.extend(parts.iter().map(|s| s.to_string()));
        let mut out = Vec::new();
        mqce_cli::run(&full, &mut out).expect("client succeeds");
        String::from_utf8(out).unwrap()
    };

    let ping = client(&["--cmd", "ping"]);
    let ping = Response::parse_line(ping.trim()).unwrap();
    assert!(ping.ok);
    assert!(ping.extra_num("vertices").unwrap() > 0.0);

    let cold = client(&["--cmd", "enumerate", "--gamma", "0.9", "--theta", "4"]);
    let cold = Response::parse_line(cold.trim()).unwrap();
    assert!(cold.ok && !cold.cached);
    assert_eq!(cold.count, expected.len());

    let warm = client(&[
        "--cmd",
        "enumerate",
        "--gamma",
        "0.9",
        "--theta",
        "4",
        "--sets",
    ]);
    let warm = Response::parse_line(warm.trim()).unwrap();
    assert!(warm.cached, "same request again must hit the cache");
    assert_eq!(warm.mqcs.as_ref(), Some(&expected));

    // Mutate the graph through the client's `--insert`/`--delete` edge-pair
    // flags; the daemon must answer subsequent requests for the new graph.
    use mqce_graph::GraphDelta;
    let (du, dv) = loaded.edges().next().expect("graph has edges");
    let (iu, iv) = (0..loaded.num_vertices() as u32)
        .flat_map(|u| (0..loaded.num_vertices() as u32).map(move |v| (u, v)))
        .find(|&(u, v)| u < v && !loaded.has_edge(u, v))
        .expect("some non-edge exists");
    let updated = client(&[
        "--cmd",
        "update",
        "--insert",
        &format!("{iu}-{iv}"),
        "--delete",
        &format!("{du}-{dv}"),
    ]);
    let updated = Response::parse_line(updated.trim()).unwrap();
    assert!(updated.ok, "update failed: {:?}", updated.error);
    let mutated = GraphDelta::new(vec![(iu, iv)], vec![(du, dv)]).apply(&loaded);
    let expected_after = Session::open(mutated.clone())
        .config(MqceConfig::new(0.9, 4).unwrap())
        .run()
        .mqcs;
    let after = client(&[
        "--cmd",
        "enumerate",
        "--gamma",
        "0.9",
        "--theta",
        "4",
        "--sets",
    ]);
    let after = Response::parse_line(after.trim()).unwrap();
    assert!(
        after.ok && !after.cached,
        "old cache entries must not answer for the mutated graph"
    );
    assert_eq!(after.mqcs.as_ref(), Some(&expected_after));

    client(&["--shutdown"]);
    server.join().expect("server thread");
    assert!(!sock_path.exists(), "socket file must be cleaned up");
}
