//! End-to-end tests of multi-process sharded enumeration: `mqce enumerate
//! --shards N` must report exactly the single-process family, a worker
//! killed mid-run must be retried once and then degrade the run to a
//! best-effort result (never a hang), and a `mqce shard-worker` process
//! must reject protocol-version mismatches with a typed error.

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

use mqce_graph::generators::{community_graph, CommunityGraphParams};

/// Writes a deterministic community graph to an edge-list file under a
/// fresh per-test temp directory and returns the file path.
fn graph_file(name: &str, n: usize, communities: usize) -> std::path::PathBuf {
    let g = community_graph(
        CommunityGraphParams {
            n,
            num_communities: communities,
            p_intra: 0.9,
            inter_degree: 1.0,
        },
        7,
    );
    let dir = std::env::temp_dir().join(format!("mqce_shard_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{name}.txt"));
    mqce_cli::save_graph(&g, path.to_str().unwrap()).expect("write edge list");
    path
}

/// Runs the mqce binary, asserting it exits successfully, and returns stdout.
fn run_mqce(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_mqce"))
        .args(args)
        .output()
        .expect("run mqce");
    assert!(
        output.status.success(),
        "mqce {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf8 output")
}

/// The `maximal qcs` count from an enumerate report.
fn mqc_count(report: &str) -> usize {
    report
        .lines()
        .find_map(|l| l.strip_prefix("maximal qcs"))
        .expect("report has a `maximal qcs` line")
        .trim()
        .parse()
        .expect("count parses")
}

#[test]
fn three_shard_enumeration_matches_single_process() {
    let path = graph_file("parity", 200, 20);
    let file = path.to_str().unwrap();
    let single = run_mqce(&["enumerate", file, "--gamma", "0.9", "--theta", "4"]);
    let sharded = run_mqce(&[
        "enumerate",
        file,
        "--gamma",
        "0.9",
        "--theta",
        "4",
        "--shards",
        "3",
    ]);
    assert_eq!(mqc_count(&sharded), mqc_count(&single));
    assert!(sharded.contains("shards           3"));
    assert!(sharded.contains("shard 0"));
    assert!(sharded.contains("shard 2"));
    assert!(sharded.contains("merge "));
    assert!(
        !sharded.contains("WARNING"),
        "unfaulted sharded run reported best-effort:\n{sharded}"
    );
}

#[test]
fn sharded_sets_are_byte_identical_to_single_process() {
    let path = graph_file("sets", 150, 15);
    let file = path.to_str().unwrap();
    let args = [
        "enumerate",
        file,
        "--gamma",
        "0.85",
        "--theta",
        "4",
        "--print-sets",
    ];
    let single = run_mqce(&args);
    let sharded = run_mqce(&[&args[..], &["--shards", "4"]].concat());
    // Everything after the `maximal qcs` line is the family, one set per
    // line, in canonical order on both paths.
    let family = |report: &str| -> Vec<String> {
        report
            .lines()
            .skip_while(|l| !l.starts_with("maximal qcs"))
            .skip(1)
            .filter(|l| !l.is_empty() && l.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .map(str::to_string)
            .collect()
    };
    let (single_sets, sharded_sets) = (family(&single), family(&sharded));
    assert!(!single_sets.is_empty());
    assert_eq!(sharded_sets, single_sets);
}

#[test]
fn killed_worker_is_retried_once_then_best_effort_not_a_hang() {
    let path = graph_file("faulted", 120, 12);
    let file = path.to_str().unwrap();
    let report = run_mqce(&[
        "enumerate",
        file,
        "--gamma",
        "0.9",
        "--theta",
        "4",
        "--shards",
        "3",
        "--fault-injection",
        "--fault",
        "die:1",
    ]);
    // The die fault persists across the respawn, so the retry dies too and
    // the shard is given up rather than hanging the coordinator.
    assert!(
        report.contains("retried once, giving up"),
        "lost shard was not reported as retried-then-abandoned:\n{report}"
    );
    assert!(
        report.contains("WARNING"),
        "lost shard did not degrade the run to best-effort:\n{report}"
    );
    // The surviving shards still produce a (partial) family report.
    assert!(report.contains("maximal qcs"));
}

#[test]
fn coordinator_rejects_fault_flags_without_fault_injection() {
    let path = graph_file("guard", 60, 6);
    let file = path.to_str().unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_mqce"))
        .args([
            "enumerate",
            file,
            "--gamma",
            "0.9",
            "--theta",
            "4",
            "--shards",
            "2",
            "--fault",
            "die:0",
        ])
        .output()
        .expect("run mqce");
    assert!(!output.status.success());
}

#[test]
fn shard_worker_negotiates_the_protocol_version() {
    let mut worker = Command::new(env!("CARGO_BIN_EXE_mqce"))
        .arg("shard-worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn shard worker");
    let mut stdin = worker.stdin.take().expect("worker stdin");
    let mut stdout = BufReader::new(worker.stdout.take().expect("worker stdout"));
    let mut line = String::new();

    // A correctly-stamped ping answers ok and advertises the version.
    writeln!(stdin, r#"{{"id":"hi","cmd":"ping","version":1}}"#).unwrap();
    stdin.flush().unwrap();
    stdout.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":true"#), "ping failed: {line}");
    assert!(
        line.contains(r#""protocol_version":1"#),
        "ping did not advertise the protocol version: {line}"
    );

    // A mismatched version is rejected with the typed error, not a crash.
    line.clear();
    writeln!(stdin, r#"{{"id":"old","cmd":"ping","version":99}}"#).unwrap();
    stdin.flush().unwrap();
    stdout.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":false"#), "mismatch accepted: {line}");
    assert!(
        line.contains(r#""error_kind":"protocol_version""#),
        "mismatch not typed: {line}"
    );

    // The worker is still alive and shuts down cleanly on request.
    line.clear();
    writeln!(stdin, r#"{{"id":"bye","cmd":"shutdown"}}"#).unwrap();
    stdin.flush().unwrap();
    stdout.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":true"#), "shutdown failed: {line}");
    let status = worker.wait().expect("worker exits");
    assert!(status.success());
}
