//! The resident `mqce serve` daemon and its `mqce client` counterpart.
//!
//! Loading a large graph and computing its degeneracy ordering dominates the
//! cost of small interactive queries, so the daemon does that work once: the
//! graph, its core decomposition and (when it fits) the adjacency bit matrix
//! are packed into a [`PreparedGraph`] behind an `Arc` and shared read-only
//! by every connection. Requests arrive as newline-delimited JSON (see
//! [`crate::protocol`]) over TCP or a Unix socket; each connection gets its
//! own thread and is answered in order.
//!
//! Three mechanisms keep the daemon responsive:
//!
//! * **Result cache** — complete (non-best-effort) answers are stored in an
//!   LRU keyed on the graph fingerprint plus the canonicalised
//!   result-affecting parameters, so a repeated request costs a hash lookup
//!   instead of an enumeration.
//! * **Admission control** — at most `max_inflight` enumerations run
//!   concurrently; excess requests queue on a condvar. Cache hits and pings
//!   bypass the gate entirely.
//! * **Deadlines** — a request's `deadline_ms` budget is measured from
//!   arrival and covers queueing: whatever is left after admission becomes
//!   the pipeline time limit, and a request whose budget ran out while
//!   queued returns immediately, flagged best-effort (the zero-budget path
//!   through the S2 deadline logic guarantees prompt return).
//!
//! The graph is **not** immutable: an `update` request applies a
//! [`GraphDelta`] in place. The prepared graph lives behind an `RwLock` of
//! `Arc` snapshots — computations clone the `Arc` under a brief read lock
//! and keep working on their snapshot while an update swaps in the next
//! one, and a dedicated mutex serialises updates so delta application,
//! core maintenance and the fingerprint swap are atomic with respect to
//! each other. The result cache survives updates selectively: per-vertex
//! `query` answers whose vertices all fall outside the update's dirty
//! two-hop closure cannot have changed (the anchored decomposition bounds
//! every affected maximal quasi-clique inside that closure), so those
//! entries are re-keyed under the new fingerprint; everything else under
//! the old fingerprint is invalidated.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

use mqce_core::{PreparedGraph, Session};
use mqce_graph::{
    dirty_two_hop_closure, update_core_decomposition, Graph, GraphDelta, SubproblemScratch,
    WriteAheadLog,
};
use serde::Value;

use crate::args::ParsedArgs;
use crate::protocol::{Request, Response, PROTOCOL_VERSION};
use crate::CliError;

/// Daemon configuration (everything except the listening endpoint).
#[derive(Clone, Debug)]
pub struct ServeSettings {
    /// Maximum number of enumerations running concurrently.
    pub max_inflight: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Append one summary [`RunRecord`](mqce_bench::runner::RunRecord) to
    /// this bench log at shutdown.
    pub bench_log: Option<PathBuf>,
    /// Dataset label used in the bench-log record and ping responses.
    pub graph_label: String,
    /// Write-ahead log for `update` requests. When set, every delta is
    /// checksummed and fsync'd here *before* it is applied, so a killed
    /// daemon restarted with the same log replays to the exact pre-crash
    /// graph (same fingerprint, same family). `update` responses report the
    /// durability watermark as `wal_offset`.
    pub wal: Option<Arc<Mutex<WriteAheadLog>>>,
    /// Honour the debug-only `fault` request field (panic injection), used
    /// by the fault-containment tests. Leave off in production: a fault
    /// request can deliberately panic a handler.
    pub fault_injection: bool,
}

impl Default for ServeSettings {
    fn default() -> Self {
        ServeSettings {
            max_inflight: 2,
            cache_capacity: 128,
            bench_log: None,
            graph_label: String::new(),
            wal: None,
            fault_injection: false,
        }
    }
}

/// Counters the daemon reports in `ping` responses and at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Total requests answered (including pings and failures).
    pub requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests whose deadline expired while queued for admission.
    pub expired: u64,
    /// Malformed or invalid requests.
    pub errors: u64,
    /// Requests that consulted the result cache and missed.
    pub cache_misses: u64,
    /// Entries dropped from the cache: LRU evictions plus invalidations
    /// forced by `update` requests.
    pub cache_evictions: u64,
    /// Entries resident in the cache when the snapshot was taken.
    pub cache_len: u64,
}

#[derive(Default)]
struct ServeStats {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    expired: AtomicU64,
    errors: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self, cache_len: usize) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_len: cache_len as u64,
        }
    }
}

/// Recovers the guarded value from a poisoned lock. Poisoning only records
/// that a panic unwound while the lock was held; every structure the daemon
/// guards is either unconditionally consistent at that point (`Arc` swaps,
/// counters, the WAL's append-only offset) or re-validated by its accessor
/// (the result cache is cleared — see [`ServerState::cache`]), so recovering
/// is safe and one panicking request can never wedge every later one.
fn unpoison<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Counting semaphore for admission control. Waiters honour a deadline so a
/// request cannot be stuck in the queue past its budget.
struct Gate {
    slots: Mutex<usize>,
    cv: Condvar,
    capacity: usize,
}

impl Gate {
    fn new(capacity: usize) -> Gate {
        Gate {
            slots: Mutex::new(0),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Waits for a slot. Returns `false` if `deadline` passes first.
    fn acquire(&self, deadline: Option<Instant>) -> bool {
        let mut in_flight = unpoison(self.slots.lock());
        loop {
            if *in_flight < self.capacity {
                *in_flight += 1;
                return true;
            }
            match deadline {
                None => in_flight = unpoison(self.cv.wait(in_flight)),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    in_flight = unpoison(self.cv.wait_timeout(in_flight, d - now)).0;
                }
            }
        }
    }

    fn release(&self) {
        let mut in_flight = unpoison(self.slots.lock());
        *in_flight = in_flight.saturating_sub(1);
        drop(in_flight);
        self.cv.notify_one();
    }
}

/// RAII slot holder so the gate is released on every return path.
struct GateGuard<'a>(&'a Gate);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A complete answer worth replaying: the MQC sets plus the command-specific
/// extras (query universe size, top-k round count, …). The command and its
/// query vertices are kept so `update` can decide which entries survive a
/// graph mutation.
struct CachedOutcome {
    cmd: String,
    vertices: Vec<u32>,
    mqcs: Vec<Vec<u32>>,
    extra: Vec<(String, Value)>,
}

/// Least-recently-used result cache. Capacity is small (hundreds), so the
/// O(capacity) eviction scan is cheaper than an intrusive list and keeps the
/// structure trivially correct.
struct ResultCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, Arc<CachedOutcome>)>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Arc<CachedOutcome>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(used, outcome)| {
            *used = tick;
            Arc::clone(outcome)
        })
    }

    /// Inserts an entry, evicting the least-recently-used one at capacity.
    /// Returns how many entries were evicted (0 or 1) so the daemon's
    /// eviction counter stays exact.
    fn insert(&mut self, key: String, outcome: Arc<CachedOutcome>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = 1;
            }
        }
        self.map.insert(key, (self.tick, outcome));
        evicted
    }

    /// Rewrites every entry through `migrate`: `Some(new_key)` keeps the
    /// entry (possibly under a different key, preserving its recency),
    /// `None` drops it. Returns how many entries were dropped. This is how
    /// `update` re-keys surviving answers under the new fingerprint.
    fn retain_rekey<F>(&mut self, mut migrate: F) -> u64
    where
        F: FnMut(&str, &CachedOutcome) -> Option<String>,
    {
        let mut dropped = 0;
        let entries: Vec<_> = self.map.drain().collect();
        for (key, (used, outcome)) in entries {
            match migrate(&key, &outcome) {
                Some(new_key) => {
                    self.map.insert(new_key, (used, outcome));
                }
                None => dropped += 1,
            }
        }
        dropped
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Drops every entry, returning how many were removed. Used when the
    /// mutex around the cache was poisoned: a panic mid-mutation may have
    /// left a torn entry, and recomputing a few answers is safe where
    /// serving a half-written one is not.
    fn clear(&mut self) -> u64 {
        let n = self.map.len() as u64;
        self.map.clear();
        n
    }
}

/// How a connection thread pokes the blocked `accept` loop after setting the
/// shutdown flag: a throwaway self-connection.
enum WakeTarget {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl WakeTarget {
    fn wake(&self) {
        match self {
            WakeTarget::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            WakeTarget::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
struct ServerState {
    /// The current graph snapshot. Computations take a brief read lock to
    /// clone the `Arc` and then work lock-free on their snapshot; `update`
    /// swaps in a freshly prepared graph under the write lock.
    prepared: RwLock<Arc<PreparedGraph>>,
    /// Serialises `update` requests end to end (apply → prepare → swap →
    /// cache re-key) so two concurrent deltas cannot interleave.
    update_lock: Mutex<()>,
    settings: ServeSettings,
    cache: Mutex<ResultCache>,
    gate: Gate,
    stats: ServeStats,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    wake: WakeTarget,
}

impl ServerState {
    fn snapshot(&self) -> Arc<PreparedGraph> {
        let guard = unpoison(self.prepared.read());
        Arc::clone(&guard)
    }

    /// Locks the result cache, recovering from poisoning by discarding the
    /// (possibly torn) contents. The dropped entries are counted as
    /// evictions so the accounting stays exact, and the poison mark is
    /// cleared so later lockers take the fast path again.
    fn cache(&self) -> MutexGuard<'_, ResultCache> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.cache.clear_poison();
                let mut guard = poisoned.into_inner();
                let dropped = guard.clear();
                self.stats
                    .cache_evictions
                    .fetch_add(dropped, Ordering::Relaxed);
                guard
            }
        }
    }
}

/// A connected client stream, TCP or Unix.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Runs the daemon on an already-bound TCP listener until a `shutdown`
/// request arrives. Binding is the caller's job so tests and the CLI can
/// both use port 0 and learn the real address before the loop starts.
pub fn serve_tcp(listener: TcpListener, graph: Graph, settings: ServeSettings) -> ServeSummary {
    let wake = WakeTarget::Tcp(
        listener
            .local_addr()
            .expect("bound listener has an address"),
    );
    serve_on(Listener::Tcp(listener), wake, graph, settings)
}

/// Runs the daemon on a Unix socket path until a `shutdown` request
/// arrives. The socket file is removed when the daemon exits.
#[cfg(unix)]
pub fn serve_unix(
    path: &std::path::Path,
    graph: Graph,
    settings: ServeSettings,
) -> std::io::Result<ServeSummary> {
    let listener = UnixListener::bind(path)?;
    let summary = serve_on(
        Listener::Unix(listener),
        WakeTarget::Unix(path.to_path_buf()),
        graph,
        settings,
    );
    let _ = std::fs::remove_file(path);
    Ok(summary)
}

fn serve_on(
    listener: Listener,
    wake: WakeTarget,
    graph: Graph,
    settings: ServeSettings,
) -> ServeSummary {
    let bench_log = settings.bench_log.clone();
    let graph_label = settings.graph_label.clone();
    let state = Arc::new(ServerState {
        prepared: RwLock::new(Arc::new(PreparedGraph::new(graph))),
        update_lock: Mutex::new(()),
        gate: Gate::new(settings.max_inflight),
        cache: Mutex::new(ResultCache::new(settings.cache_capacity)),
        settings,
        stats: ServeStats::default(),
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        wake,
    });

    loop {
        match listener.accept() {
            Ok(stream) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn_state = Arc::clone(&state);
                state.active_connections.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &conn_state);
                    conn_state.active_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure; keep serving.
            }
        }
    }

    // Let in-flight connections finish before reporting (bounded, so a hung
    // client cannot pin the process).
    let drain_start = Instant::now();
    while state.active_connections.load(Ordering::SeqCst) > 0
        && drain_start.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(2));
    }

    let cache_len = state.cache().len();
    let summary = state.stats.snapshot(cache_len);
    if let Some(path) = bench_log {
        let _ = mqce_bench::runner::append_json(&path, &[serve_record(&graph_label, summary)]);
    }
    summary
}

/// The bench-log row the daemon appends at shutdown: a normal `RunRecord`
/// whose serve-specific counters are filled in and whose per-run fields are
/// zeroed (the daemon aggregates many heterogeneous requests).
fn serve_record(label: &str, summary: ServeSummary) -> mqce_bench::runner::RunRecord {
    mqce_bench::runner::RunRecord {
        dataset: label.to_string(),
        algorithm: "serve".to_string(),
        branching: "-".to_string(),
        backend: "-".to_string(),
        gamma: 0.0,
        theta: 0,
        max_round: 0,
        threads: 0,
        s2_backend: "-".to_string(),
        s2_timed_out: false,
        s2_predicted_millis: Vec::new(),
        s1_millis: 0.0,
        s2_millis: 0.0,
        s1_outputs: 0,
        mqcs: 0,
        mqc_min: 0,
        mqc_max: 0,
        mqc_avg: 0.0,
        branches: 0,
        timed_out: false,
        thread_stats: Vec::new(),
        serve_requests: summary.requests,
        serve_cache_hits: summary.cache_hits,
        serve_cache_misses: summary.cache_misses,
        serve_cache_evictions: summary.cache_evictions,
        serve_cache_len: summary.cache_len,
        updates_applied: 0,
        dirty_subproblems: 0,
        full_recompute_millis: 0.0,
        alloc_count: 0,
        peak_alloc_bytes: 0,
        shards: 0,
        shard_millis: Vec::new(),
        merge_millis: 0.0,
        stats: Default::default(),
    }
}

/// Hard cap on one request line. The protocol's biggest legitimate payloads
/// (bulk update edge lists) fit comfortably; anything larger is either a
/// mistake or an attempt to balloon daemon memory, and is answered with a
/// clean error instead of being buffered without bound.
const MAX_LINE_BYTES: usize = 1 << 20;

/// One bounded read from a connection.
pub(crate) enum LineRead {
    /// A complete line (without the newline), within the size cap.
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the cap; the connection should be dropped (the
    /// remainder of the stream can no longer be framed reliably).
    TooLong,
}

/// Reads one newline-terminated line without ever buffering more than `max`
/// bytes of it — the `BufRead::lines` convenience would happily grow its
/// `String` to the size of whatever a client streams at us.
pub(crate) fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max: usize,
) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                // Final line without a trailing newline.
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    reader.consume(pos + 1);
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > max {
                    reader.consume(len);
                    drain_line(reader, 8 * max)?;
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

/// Discards the remainder of an oversized line (through its newline, EOF, or
/// a hard budget). Without this, closing the connection while the client is
/// still mid-write would RST the stream and could destroy the error response
/// sitting in the client's receive buffer before it is read.
fn drain_line<R: BufRead>(reader: &mut R, budget: usize) -> std::io::Result<()> {
    let mut discarded = 0usize;
    while discarded < budget {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            break;
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                break;
            }
            None => {
                let len = chunk.len();
                discarded += len;
                reader.consume(len);
            }
        }
    }
    Ok(())
}

fn handle_connection(stream: Stream, state: &Arc<ServerState>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, MAX_LINE_BYTES)? {
            LineRead::Eof => break,
            LineRead::TooLong => {
                state.stats.requests.fetch_add(1, Ordering::Relaxed);
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
                let response =
                    Response::failure(None, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                writer.write_all(response.to_line().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                break;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(state, &line);
        writer.write_all(response.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            state.wake.wake();
            break;
        }
    }
    Ok(())
}

/// Best human-readable rendering of a panic payload (panics almost always
/// carry a `&str` or `String` message).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn handle_line(state: &ServerState, line: &str) -> (Response, bool) {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    match Request::parse_line(line) {
        Err(e) => {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
            (Response::failure(None, e), false)
        }
        Ok(req) => {
            // Containment boundary: a panicking handler answers *this*
            // request with a typed internal error instead of killing its
            // connection thread and leaving the client to diagnose an EOF.
            // `AssertUnwindSafe` is sound because all state the handler can
            // touch is shared and lock-guarded, and every lock recovers from
            // poisoning into a consistent value (the cache by discarding its
            // contents, everything else because its invariants hold wherever
            // a panic can unwind through — see `unpoison`).
            let id = req.id.clone();
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_request(state, req)
            })) {
                Ok(answered) => answered,
                Err(payload) => {
                    state.stats.errors.fetch_add(1, Ordering::Relaxed);
                    let mut response = Response::failure(
                        id,
                        format!(
                            "internal error: request handler panicked: {}",
                            panic_message(payload.as_ref())
                        ),
                    );
                    response
                        .extra
                        .push(("error_kind".to_string(), Value::Str("internal".to_string())));
                    (response, false)
                }
            }
        }
    }
}

/// Vets the debug-only `fault` request field. Returns an error response when
/// fault injection is disabled or the mode is unknown, and panics on the
/// spot for the handler-level modes — the containment boundary in
/// [`handle_line`] turns that into a typed internal-error response.
/// `panic-worker:<v>` returns `None` and is applied inside
/// [`compute_response`], where the enumeration config exists.
fn fault_gate(state: &ServerState, req: &Request) -> Option<Response> {
    let fault = req.fault.as_deref()?;
    if !state.settings.fault_injection {
        state.stats.errors.fetch_add(1, Ordering::Relaxed);
        return Some(Response::failure(
            req.id.clone(),
            "fault injection is disabled (start the daemon with --fault-injection)",
        ));
    }
    match fault {
        "panic" => panic!("injected fault: handler panic"),
        "panic-locked" => {
            // Panic while holding the cache lock: exercises the poison
            // recovery in `ServerState::cache` (the next locker clears the
            // torn cache and carries on) instead of wedging every later
            // cache access.
            let _cache = state.cache();
            panic!("injected fault: handler panic while holding the cache lock");
        }
        mode if mode.starts_with("panic-worker:") => None,
        other => {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
            Some(Response::failure(
                req.id.clone(),
                format!("unknown fault mode {other:?}"),
            ))
        }
    }
}

fn handle_request(state: &ServerState, req: Request) -> (Response, bool) {
    let arrival = Instant::now();
    // Version negotiation: a stamped request from a peer speaking a
    // different protocol version is rejected with a typed failure before
    // any work happens (unstamped requests are accepted for compatibility
    // with clients that predate the field).
    if let Some(theirs) = req.version {
        if theirs != PROTOCOL_VERSION {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
            return (Response::version_mismatch(req.id, theirs), false);
        }
    }
    if let Some(response) = fault_gate(state, &req) {
        return (response, false);
    }
    match req.cmd.as_str() {
        "ping" => (ping_response(state, &req), false),
        // Updates mutate the graph, so they bypass the result cache entirely
        // (rather: they rewrite it) and are never stored in it.
        "update" => {
            let response = update_response(state, &req, arrival);
            if !response.ok {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            (response, false)
        }
        "shutdown" => (
            Response {
                id: req.id,
                ok: true,
                ..Response::default()
            },
            true,
        ),
        _ => {
            let response = compute_response(state, req, arrival);
            if !response.ok {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            (response, false)
        }
    }
}

fn ping_response(state: &ServerState, req: &Request) -> Response {
    let cache_len = state.cache().len();
    let stats = state.stats.snapshot(cache_len);
    let prepared = state.snapshot();
    let g = prepared.graph();
    let extra = vec![
        (
            "protocol_version".to_string(),
            Value::Num(PROTOCOL_VERSION as f64),
        ),
        (
            "fingerprint".to_string(),
            Value::Str(format!("{:016x}", prepared.fingerprint())),
        ),
        (
            "graph".to_string(),
            Value::Str(state.settings.graph_label.clone()),
        ),
        ("vertices".to_string(), Value::Num(g.num_vertices() as f64)),
        ("edges".to_string(), Value::Num(g.num_edges() as f64)),
        (
            "degeneracy".to_string(),
            Value::Num(prepared.degeneracy() as f64),
        ),
        ("requests".to_string(), Value::Num(stats.requests as f64)),
        (
            "cache_hits".to_string(),
            Value::Num(stats.cache_hits as f64),
        ),
        (
            "cache_misses".to_string(),
            Value::Num(stats.cache_misses as f64),
        ),
        (
            "cache_evictions".to_string(),
            Value::Num(stats.cache_evictions as f64),
        ),
        ("cache_len".to_string(), Value::Num(stats.cache_len as f64)),
        (
            "cache_entries".to_string(),
            Value::Num(stats.cache_len as f64),
        ),
    ];
    Response {
        id: req.id.clone(),
        ok: true,
        extra,
        ..Response::default()
    }
}

/// Handles an `update` request: applies the [`GraphDelta`] to the current
/// snapshot, recomputes the core decomposition (reporting which vertices
/// changed core number), swaps in the freshly prepared graph — the
/// fingerprint is recomputed from the mutated CSR, so it tracks the graph
/// exactly — and re-keys the result cache. A cached `query` answer whose
/// vertices all lie outside the dirty two-hop closure cannot have changed
/// (every affected maximal quasi-clique lives inside that closure), so it
/// survives under the new fingerprint; every other entry is invalidated.
fn update_response(state: &ServerState, req: &Request, arrival: Instant) -> Response {
    if req.insert.is_empty() && req.delete.is_empty() {
        return Response::failure(
            req.id.clone(),
            "`update` needs a non-empty `insert` or `delete` list",
        );
    }
    let delta = GraphDelta::new(req.insert.clone(), req.delete.clone());

    // One update at a time: apply → prepare → swap → re-key is atomic with
    // respect to other updates. Readers keep using their snapshots.
    let _updating = unpoison(state.update_lock.lock());

    // Durability first: the delta is checksummed and fsync'd to the WAL
    // *before* it is applied, so a daemon killed at any later point replays
    // it on restart and an acknowledged update is never lost. If the append
    // fails the update is refused outright — the WAL must never lag the
    // in-memory graph. (The converse — a logged delta whose in-process apply
    // then fails — is surfaced as an error here and healed by the next
    // restart's replay: the log is the durable source of truth.)
    let wal_offset = match state.settings.wal.as_ref() {
        Some(wal) => match unpoison(wal.lock()).append(&delta) {
            Ok(offset) => Some(offset),
            Err(e) => {
                return Response::failure(
                    req.id.clone(),
                    format!("WAL append failed; update not applied: {e}"),
                )
            }
        },
        None => None,
    };

    let old = state.snapshot();
    let old_fingerprint = old.fingerprint();
    let new_graph = delta.apply(old.graph());
    let mut scratch = SubproblemScratch::new();
    let dirty = dirty_two_hop_closure(old.graph(), &new_graph, &delta, &mut scratch);
    let core_update = update_core_decomposition(old.cores(), &new_graph);
    let prepared = Arc::new(PreparedGraph::with_cores(new_graph, core_update.cores));
    let new_fingerprint = prepared.fingerprint();
    *unpoison(state.prepared.write()) = Arc::clone(&prepared);

    // Re-key the cache: only `query` answers fully outside the dirty
    // closure are still valid. Anything else (whole-graph enumerations,
    // top-k answers, queries touching the closure, leftovers from even
    // older fingerprints) is dropped and counted as an eviction.
    let old_prefix = format!("{old_fingerprint:016x}|");
    let new_prefix = format!("{new_fingerprint:016x}|");
    let (invalidated, kept) = {
        let mut cache = state.cache();
        let invalidated = cache.retain_rekey(|key, outcome| {
            let rest = key.strip_prefix(old_prefix.as_str())?;
            let unaffected = outcome.cmd == "query"
                && !outcome.vertices.is_empty()
                && outcome
                    .vertices
                    .iter()
                    .all(|v| dirty.binary_search(v).is_err());
            unaffected.then(|| format!("{new_prefix}{rest}"))
        });
        (invalidated, cache.len())
    };
    state
        .stats
        .cache_evictions
        .fetch_add(invalidated, Ordering::Relaxed);

    let g = prepared.graph();
    let mut extra = vec![
        (
            "fingerprint".to_string(),
            Value::Str(format!("{new_fingerprint:016x}")),
        ),
        (
            "previous_fingerprint".to_string(),
            Value::Str(format!("{old_fingerprint:016x}")),
        ),
        (
            "updates_applied".to_string(),
            Value::Num(delta.len() as f64),
        ),
        ("dirty".to_string(), Value::Num(dirty.len() as f64)),
        (
            "core_changed".to_string(),
            Value::Num(core_update.changed.len() as f64),
        ),
        ("vertices".to_string(), Value::Num(g.num_vertices() as f64)),
        ("edges".to_string(), Value::Num(g.num_edges() as f64)),
        (
            "cache_invalidated".to_string(),
            Value::Num(invalidated as f64),
        ),
        ("cache_kept".to_string(), Value::Num(kept as f64)),
    ];
    if let Some(offset) = wal_offset {
        // The durability watermark: the log is fsync'd up to (and including)
        // this delta at this byte offset.
        extra.push(("wal_offset".to_string(), Value::Num(offset as f64)));
    }
    Response {
        id: req.id.clone(),
        ok: true,
        elapsed_ms: arrival.elapsed().as_secs_f64() * 1e3,
        extra,
        ..Response::default()
    }
}

pub(crate) fn build_request_config(req: &Request) -> Result<mqce_core::MqceConfig, String> {
    let config = mqce_core::MqceConfig::new(req.gamma, req.theta)
        .map_err(|e| e.to_string())?
        .with_algorithm(crate::parse_algorithm(req.algorithm.as_deref()).map_err(stringify)?)
        .with_branching(crate::parse_branching(req.branching.as_deref()).map_err(stringify)?)
        .with_backend(crate::parse_backend(req.backend.as_deref()).map_err(stringify)?)
        .with_s2_backend(crate::parse_s2_backend(req.s2_backend.as_deref()).map_err(stringify)?);
    Ok(config)
}

fn stringify(e: CliError) -> String {
    e.to_string()
}

fn compute_response(state: &ServerState, req: Request, arrival: Instant) -> Response {
    let mut config = match build_request_config(&req) {
        Ok(config) => config,
        Err(e) => return Response::failure(req.id, e),
    };
    // `fault_gate` already vetted the field; only the worker mode reaches
    // this point. The anchor flows to the DC drivers through the params so
    // the request exercises the real per-subproblem containment boundary.
    if let Some(anchor) = req
        .fault
        .as_deref()
        .and_then(|f| f.strip_prefix("panic-worker:"))
    {
        match anchor.parse::<u32>() {
            Ok(v) => config.params.fail_anchor = Some(v),
            Err(_) => {
                return Response::failure(
                    req.id,
                    format!("bad fault anchor {anchor:?} (expected panic-worker:<vertex>)"),
                )
            }
        }
    }
    // Fault requests bypass the cache in both directions: a cached clean
    // answer must not mask the injected fault, and a faulted answer must
    // never be served to a clean request.
    let use_cache = !req.no_cache && req.fault.is_none();
    if req.cmd == "query" && req.vertices.is_empty() {
        return Response::failure(req.id, "`query` needs a non-empty `vertices` list");
    }
    let deadline = req
        .deadline_ms
        .map(|ms| arrival + Duration::from_millis(ms));
    // The snapshot pins one graph version for the whole request: the cache
    // key, the enumeration and the stored outcome all agree even if an
    // update lands mid-request.
    let prepared = state.snapshot();
    let key = req.cache_key(prepared.fingerprint());

    if use_cache {
        let hit = state.cache().get(&key);
        match hit {
            Some(outcome) => {
                state.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return render(&req, &outcome, true, false, false, arrival);
            }
            None => {
                state.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    if !state.gate.acquire(deadline) {
        // The budget ran out while queued: answer promptly and honestly
        // rather than running an enumeration the client stopped waiting for.
        state.stats.expired.fetch_add(1, Ordering::Relaxed);
        return Response {
            id: req.id,
            ok: true,
            best_effort: true,
            elapsed_ms: arrival.elapsed().as_secs_f64() * 1e3,
            ..Response::default()
        };
    }
    let _slot = GateGuard(&state.gate);

    // Whatever budget survived queueing becomes the pipeline's time limit; a
    // fully spent budget becomes a zero limit, which the pipeline answers
    // immediately with the best-effort flags set.
    let config = match deadline {
        Some(d) => config.with_time_limit(d.saturating_duration_since(Instant::now())),
        None => config,
    };

    // Surfaces contained worker panics in the response: the answer is
    // honest (`best_effort`, never cached — the panicked subproblem's
    // quasi-cliques may be missing) and the offending anchor is reported.
    let panic_extras = |stats: &mqce_core::SearchStats, extra: &mut Vec<(String, Value)>| {
        if stats.subproblem_panics > 0 {
            extra.push((
                "contained_panics".to_string(),
                Value::Num(stats.subproblem_panics as f64),
            ));
            if let Some(anchor) = stats.last_panicked_anchor {
                extra.push(("panicked_anchor".to_string(), Value::Num(anchor as f64)));
            }
        }
    };

    let (outcome, best_effort, s2_timed_out) = match req.cmd.as_str() {
        "enumerate" => {
            let threads = crate::resolve_threads(req.threads);
            let result = Session::open_prepared(Arc::clone(&prepared))
                .config(config)
                .threads(threads)
                .run();
            let (timed_out, s2_timed_out) = (result.timed_out(), result.s2_timed_out());
            let contained = result.stats.subproblem_panics;
            let mut extra = vec![("s2_engine".to_string(), Value::Str(result.s2.to_string()))];
            panic_extras(&result.stats, &mut extra);
            let outcome = CachedOutcome {
                cmd: req.cmd.clone(),
                vertices: Vec::new(),
                mqcs: result.mqcs,
                extra,
            };
            (
                outcome,
                timed_out || s2_timed_out || contained > 0,
                s2_timed_out,
            )
        }
        "query" => {
            let result =
                match mqce_core::find_mqcs_containing(prepared.graph(), &req.vertices, &config) {
                    Ok(result) => result,
                    Err(e) => return Response::failure(req.id, e.to_string()),
                };
            let s2_timed_out = result.s2_timed_out;
            let contained = result.stats.subproblem_panics;
            let mut extra = vec![(
                "universe".to_string(),
                Value::Num(result.universe_size as f64),
            )];
            panic_extras(&result.stats, &mut extra);
            let outcome = CachedOutcome {
                cmd: req.cmd.clone(),
                vertices: req.vertices.clone(),
                mqcs: result.mqcs,
                extra,
            };
            (outcome, s2_timed_out || contained > 0, s2_timed_out)
        }
        "topk" => {
            let result = match mqce_core::find_largest_mqcs(
                prepared.graph(),
                req.gamma,
                req.k,
                Some(config),
            ) {
                Ok(result) => result,
                Err(e) => return Response::failure(req.id, e.to_string()),
            };
            let outcome = CachedOutcome {
                cmd: req.cmd.clone(),
                vertices: Vec::new(),
                mqcs: result.mqcs,
                extra: vec![
                    (
                        "final_theta".to_string(),
                        Value::Num(result.final_theta as f64),
                    ),
                    ("rounds".to_string(), Value::Num(result.rounds as f64)),
                ],
            };
            // Top-k does not surface its inner S2 flags; a spent deadline is
            // still detectable from the clock.
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            (outcome, expired, false)
        }
        "shard_run" => {
            return Response::failure(
                req.id,
                "`shard_run` is answered by `mqce shard-worker` processes, not the daemon",
            )
        }
        other => return Response::failure(req.id, format!("unknown command {other:?}")),
    };

    // A deadline that expired mid-run means the answer may be partial even
    // if no individual stage reported it.
    let best_effort = best_effort || deadline.is_some_and(|d| Instant::now() >= d);

    let outcome = Arc::new(outcome);
    if use_cache && !best_effort && !s2_timed_out {
        let evicted = state.cache().insert(key, Arc::clone(&outcome));
        state
            .stats
            .cache_evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }
    render(&req, &outcome, false, best_effort, s2_timed_out, arrival)
}

fn render(
    req: &Request,
    outcome: &CachedOutcome,
    cached: bool,
    best_effort: bool,
    s2_timed_out: bool,
    arrival: Instant,
) -> Response {
    Response {
        id: req.id.clone(),
        ok: true,
        error: None,
        cached,
        best_effort,
        s2_timed_out,
        elapsed_ms: arrival.elapsed().as_secs_f64() * 1e3,
        count: outcome.mqcs.len(),
        mqcs: req.sets.then(|| outcome.mqcs.clone()),
        extra: outcome.extra.clone(),
    }
}

// ---------------------------------------------------------------------------
// CLI entry points
// ---------------------------------------------------------------------------

fn io_err(e: std::io::Error) -> CliError {
    CliError::Io(e.to_string())
}

/// `mqce serve <graph> [--addr HOST:PORT | --socket PATH] ...`
pub(crate) fn cmd_serve<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[
        "addr",
        "socket",
        "max-inflight",
        "cache-capacity",
        "bench-log",
        "wal",
        "fault-injection",
        "quiet",
    ])?;
    parsed.no_extra_positionals(2)?;
    let path = parsed.positional(1, "graph")?;
    let mut graph = crate::load_graph(path)?;
    let quiet = parsed.switch("quiet");

    // Crash recovery: replay the WAL's surviving deltas onto the freshly
    // loaded graph before serving, so a killed daemon restarts to the exact
    // post-update state its clients last saw acknowledged.
    let wal = match parsed.get("wal") {
        Some(wal_path) => {
            let (wal, deltas) = WriteAheadLog::open(std::path::Path::new(wal_path))
                .map_err(|e| CliError::Io(format!("cannot open WAL {wal_path}: {e}")))?;
            let replayed = deltas.len();
            for delta in &deltas {
                graph = delta.apply(&graph);
            }
            if !quiet && replayed > 0 {
                writeln!(out, "wal replay       {replayed} updates from {wal_path}")
                    .map_err(io_err)?;
            }
            Some(Arc::new(Mutex::new(wal)))
        }
        None => None,
    };

    let settings = ServeSettings {
        max_inflight: parsed.get_usize("max-inflight", 2)?.max(1),
        cache_capacity: parsed.get_usize("cache-capacity", 128)?,
        bench_log: parsed.get("bench-log").map(PathBuf::from),
        graph_label: path.to_string(),
        wal,
        fault_injection: parsed.switch("fault-injection"),
    };

    let summary = if let Some(socket) = parsed.get("socket") {
        #[cfg(unix)]
        {
            if !quiet {
                writeln!(
                    out,
                    "listening        {socket} ({} vertices, {} edges)",
                    graph.num_vertices(),
                    graph.num_edges()
                )
                .map_err(io_err)?;
                out.flush().map_err(io_err)?;
            }
            serve_unix(std::path::Path::new(socket), graph, settings).map_err(io_err)?
        }
        #[cfg(not(unix))]
        {
            return Err(CliError::Params(format!(
                "--socket {socket} needs Unix domain sockets; use --addr on this platform"
            )));
        }
    } else {
        let addr = parsed.get("addr").unwrap_or("127.0.0.1:7621");
        let listener = TcpListener::bind(addr)
            .map_err(|e| CliError::Io(format!("cannot bind {addr}: {e}")))?;
        if !quiet {
            writeln!(
                out,
                "listening        {} ({} vertices, {} edges)",
                listener.local_addr().map_err(io_err)?,
                graph.num_vertices(),
                graph.num_edges()
            )
            .map_err(io_err)?;
            out.flush().map_err(io_err)?;
        }
        serve_tcp(listener, graph, settings)
    };

    if !quiet {
        writeln!(
            out,
            "served           requests={} cache_hits={} cache_misses={} cache_evictions={} cache_len={} expired={} errors={}",
            summary.requests,
            summary.cache_hits,
            summary.cache_misses,
            summary.cache_evictions,
            summary.cache_len,
            summary.expired,
            summary.errors
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Reconnect pacing: exponential backoff (10ms doubling to a 640ms ceiling)
/// with a small deterministic jitter derived from the attempt number by a
/// hash-multiply, so many clients started by the same supervisor do not
/// hammer a restarting daemon in lockstep. No clock or RNG involved — the
/// same attempt always sleeps the same time, which keeps tests reproducible.
fn retry_backoff(attempt: u32) -> Duration {
    let base = 10u64 << attempt.min(6);
    let jitter = (attempt as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56;
    Duration::from_millis(base + jitter % (base / 2 + 1))
}

fn connect_with_retry(parsed: &ParsedArgs) -> Result<Stream, CliError> {
    let retry = Duration::from_secs(parsed.get_u64("retry-secs", 0)?);
    let give_up = Instant::now() + retry;
    let connect = || -> std::io::Result<Stream> {
        if let Some(socket) = parsed.get("socket") {
            #[cfg(unix)]
            {
                return UnixStream::connect(socket).map(Stream::Unix);
            }
            #[cfg(not(unix))]
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    format!("--socket {socket} needs Unix domain sockets"),
                ));
            }
        }
        let addr = parsed.get("addr").unwrap_or("127.0.0.1:7621");
        TcpStream::connect(addr).map(Stream::Tcp)
    };
    let mut attempt = 0u32;
    loop {
        match connect() {
            Ok(stream) => return Ok(stream),
            Err(_) if Instant::now() < give_up => {
                let pause = retry_backoff(attempt).min(give_up - Instant::now());
                attempt += 1;
                std::thread::sleep(pause);
            }
            Err(e) => return Err(CliError::Io(format!("cannot connect to daemon: {e}"))),
        }
    }
}

/// One client connection: paired buffered reader/writer over a cloned
/// stream, so a failed round trip can be retried on a fresh connection.
struct ClientConn {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
}

impl ClientConn {
    fn connect(parsed: &ParsedArgs) -> Result<ClientConn, CliError> {
        let stream = connect_with_retry(parsed)?;
        let reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        Ok(ClientConn {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line and reads one response line.
    fn round_trip(&mut self, line: &str) -> Result<String, CliError> {
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(io_err)?;
        if n == 0 {
            return Err(CliError::Io(
                "daemon closed the connection before responding".to_string(),
            ));
        }
        Ok(response.trim_end().to_string())
    }
}

/// Commands that are safe to retry blindly on a transient connection error:
/// they never mutate daemon state, so running twice equals running once.
/// `update` and `shutdown` are deliberately absent — a reset after sending
/// either leaves "did it happen?" genuinely unknown.
fn is_idempotent(cmd: &str) -> bool {
    matches!(cmd, "ping" | "enumerate" | "query" | "topk")
}

/// Parses an `--insert`/`--delete` flag value: a comma-separated list of
/// `u-v` endpoint pairs, e.g. `0-3,7-12`.
fn parse_edge_list(parsed: &ParsedArgs, name: &str) -> Result<Vec<(u32, u32)>, CliError> {
    let Some(text) = parsed.get(name) else {
        return Ok(Vec::new());
    };
    let bad = |pair: &str| {
        CliError::Params(format!(
            "--{name}: `{pair}` is not a `u-v` edge (expected e.g. `0-3,7-12`)"
        ))
    };
    text.split(',')
        .map(str::trim)
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (u, v) = pair.split_once('-').ok_or_else(|| bad(pair))?;
            Ok((
                u.trim().parse::<u32>().map_err(|_| bad(pair))?,
                v.trim().parse::<u32>().map_err(|_| bad(pair))?,
            ))
        })
        .collect()
}

/// Builds the single request described by `mqce client --cmd ...` flags.
fn request_from_flags(parsed: &ParsedArgs, cmd: &str) -> Result<Request, CliError> {
    Ok(Request {
        id: parsed.get("id").map(str::to_string),
        cmd: cmd.to_ascii_lowercase(),
        gamma: parsed.get_f64("gamma", 0.9)?,
        theta: parsed.get_usize("theta", 2)?,
        k: parsed.get_usize("k", 10)?,
        vertices: parsed.get_vertex_list("vertices")?,
        insert: parse_edge_list(parsed, "insert")?,
        delete: parse_edge_list(parsed, "delete")?,
        algorithm: parsed.get("algorithm").map(str::to_string),
        branching: parsed.get("branching").map(str::to_string),
        backend: parsed.get("backend").map(str::to_string),
        s2_backend: parsed.get("s2-backend").map(str::to_string),
        threads: parsed.get_usize("threads", 1)?,
        deadline_ms: match parsed.get("deadline-ms") {
            Some(_) => Some(parsed.get_u64("deadline-ms", 0)?),
            None => None,
        },
        no_cache: parsed.switch("no-cache"),
        sets: parsed.switch("sets"),
        fault: parsed.get("fault").map(str::to_string),
        ..Request::default()
    })
}

/// `mqce client (--addr HOST:PORT | --socket PATH) [--cmd C ...]
/// [--requests FILE] [--shutdown]` — sends requests to a running daemon and
/// prints each JSON response line verbatim. Exits with an error if any
/// response reports `ok=false`, so scripts can rely on the exit code.
pub(crate) fn cmd_client<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[
        "addr",
        "socket",
        "retry-secs",
        "requests",
        "cmd",
        "id",
        "gamma",
        "theta",
        "k",
        "vertices",
        "insert",
        "delete",
        "algorithm",
        "branching",
        "backend",
        "s2-backend",
        "threads",
        "deadline-ms",
        "no-cache",
        "sets",
        "fault",
        "shutdown",
    ])?;
    parsed.no_extra_positionals(1)?;

    let mut conn = ClientConn::connect(parsed)?;
    let mut any_failed = false;
    let exchange = |conn: &mut ClientConn,
                    request: &Request,
                    out: &mut W,
                    any_failed: &mut bool|
     -> Result<(), CliError> {
        let line = request.to_line();
        let response = match conn.round_trip(&line) {
            Ok(response) => response,
            // A transient reset (daemon restarted, idle connection reaped)
            // on a read-only command is safe to retry exactly once on a
            // fresh connection; anything mutating propagates the error.
            Err(CliError::Io(_)) if is_idempotent(&request.cmd) => {
                *conn = ClientConn::connect(parsed)?;
                conn.round_trip(&line)?
            }
            Err(e) => return Err(e),
        };
        writeln!(out, "{response}").map_err(io_err)?;
        match Response::parse_line(&response) {
            Ok(resp) if !resp.ok => *any_failed = true,
            Ok(_) => {}
            Err(e) => return Err(CliError::Other(format!("unparseable response: {e}"))),
        }
        Ok(())
    };

    if let Some(file) = parsed.get("requests") {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError::Io(format!("cannot read {file}: {e}")))?;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            // Validate locally so a typo is caught before it hits the wire.
            let request = Request::parse_line(line).map_err(CliError::Other)?;
            exchange(&mut conn, &request, out, &mut any_failed)?;
        }
    } else if let Some(cmd) = parsed.get("cmd") {
        let request = request_from_flags(parsed, cmd)?;
        exchange(&mut conn, &request, out, &mut any_failed)?;
    } else if !parsed.switch("shutdown") {
        return Err(CliError::Params(
            "nothing to send: give --cmd, --requests or --shutdown".to_string(),
        ));
    }

    if parsed.switch("shutdown") {
        let request = Request {
            cmd: "shutdown".to_string(),
            ..Request::default()
        };
        exchange(&mut conn, &request, out, &mut any_failed)?;
    }

    if any_failed {
        return Err(CliError::Other(
            "daemon returned at least one error response".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_capacity_and_times_out_waiters() {
        let gate = Gate::new(2);
        assert!(gate.acquire(None));
        assert!(gate.acquire(None));
        // Third caller with an already-spent budget is turned away quickly.
        let start = Instant::now();
        assert!(!gate.acquire(Some(Instant::now() + Duration::from_millis(20))));
        assert!(start.elapsed() < Duration::from_secs(2));
        // After a release, the slot is available again.
        gate.release();
        assert!(gate.acquire(Some(Instant::now() + Duration::from_millis(20))));
    }

    fn outcome(cmd: &str, vertices: &[u32]) -> Arc<CachedOutcome> {
        Arc::new(CachedOutcome {
            cmd: cmd.to_string(),
            vertices: vertices.to_vec(),
            mqcs: Vec::new(),
            extra: Vec::new(),
        })
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        assert_eq!(cache.insert("a".to_string(), outcome("query", &[1])), 0);
        assert_eq!(cache.insert("b".to_string(), outcome("query", &[2])), 0);
        assert!(cache.get("a").is_some()); // refresh `a`
        assert_eq!(cache.insert("c".to_string(), outcome("query", &[3])), 1); // evicts `b`
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_stores_nothing() {
        let mut cache = ResultCache::new(0);
        assert_eq!(cache.insert("a".to_string(), outcome("query", &[1])), 0);
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn retain_rekey_migrates_survivors_and_counts_drops() {
        let mut cache = ResultCache::new(8);
        cache.insert("00aa|query|x".to_string(), outcome("query", &[5]));
        cache.insert("00aa|query|y".to_string(), outcome("query", &[2]));
        cache.insert("00aa|enumerate|z".to_string(), outcome("enumerate", &[]));
        cache.insert("dead|query|w".to_string(), outcome("query", &[9]));
        // Mimic an update: old fp `00aa`, new fp `00bb`, dirty = {2}.
        let dirty = [2u32];
        let dropped = cache.retain_rekey(|key, entry| {
            let rest = key.strip_prefix("00aa|")?;
            let unaffected = entry.cmd == "query"
                && !entry.vertices.is_empty()
                && entry
                    .vertices
                    .iter()
                    .all(|v| dirty.binary_search(v).is_err());
            unaffected.then(|| format!("00bb|{rest}"))
        });
        // Dropped: the dirty query, the enumerate, and the stale-fp entry.
        assert_eq!(dropped, 3);
        assert_eq!(cache.len(), 1);
        assert!(cache.get("00bb|query|x").is_some());
        assert!(cache.get("00aa|query|x").is_none());
    }
}
