//! The resident `mqce serve` daemon and its `mqce client` counterpart.
//!
//! Loading a large graph and computing its degeneracy ordering dominates the
//! cost of small interactive queries, so the daemon does that work once: the
//! graph, its core decomposition and (when it fits) the adjacency bit matrix
//! are packed into a [`PreparedGraph`] behind an `Arc` and shared read-only
//! by every connection. Requests arrive as newline-delimited JSON (see
//! [`crate::protocol`]) over TCP or a Unix socket; each connection gets its
//! own thread and is answered in order.
//!
//! Three mechanisms keep the daemon responsive:
//!
//! * **Result cache** — complete (non-best-effort) answers are stored in an
//!   LRU keyed on the graph fingerprint plus the canonicalised
//!   result-affecting parameters, so a repeated request costs a hash lookup
//!   instead of an enumeration.
//! * **Admission control** — at most `max_inflight` enumerations run
//!   concurrently; excess requests queue on a condvar. Cache hits and pings
//!   bypass the gate entirely.
//! * **Deadlines** — a request's `deadline_ms` budget is measured from
//!   arrival and covers queueing: whatever is left after admission becomes
//!   the pipeline time limit, and a request whose budget ran out while
//!   queued returns immediately, flagged best-effort (the zero-budget path
//!   through the S2 deadline logic guarantees prompt return).
//!
//! The graph is **not** immutable: an `update` request applies a
//! [`GraphDelta`] in place. The prepared graph lives behind an `RwLock` of
//! `Arc` snapshots — computations clone the `Arc` under a brief read lock
//! and keep working on their snapshot while an update swaps in the next
//! one, and a dedicated mutex serialises updates so delta application,
//! core maintenance and the fingerprint swap are atomic with respect to
//! each other. The result cache survives updates selectively: per-vertex
//! `query` answers whose vertices all fall outside the update's dirty
//! two-hop closure cannot have changed (the anchored decomposition bounds
//! every affected maximal quasi-clique inside that closure), so those
//! entries are re-keyed under the new fingerprint; everything else under
//! the old fingerprint is invalidated.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use mqce_core::{enumerate_mqcs_shared, enumerate_mqcs_shared_parallel, PreparedGraph};
use mqce_graph::{
    dirty_two_hop_closure, update_core_decomposition, Graph, GraphDelta, SubproblemScratch,
};
use serde::Value;

use crate::args::ParsedArgs;
use crate::protocol::{Request, Response};
use crate::CliError;

/// Daemon configuration (everything except the listening endpoint).
#[derive(Clone, Debug)]
pub struct ServeSettings {
    /// Maximum number of enumerations running concurrently.
    pub max_inflight: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Append one summary [`RunRecord`](mqce_bench::runner::RunRecord) to
    /// this bench log at shutdown.
    pub bench_log: Option<PathBuf>,
    /// Dataset label used in the bench-log record and ping responses.
    pub graph_label: String,
}

impl Default for ServeSettings {
    fn default() -> Self {
        ServeSettings {
            max_inflight: 2,
            cache_capacity: 128,
            bench_log: None,
            graph_label: String::new(),
        }
    }
}

/// Counters the daemon reports in `ping` responses and at shutdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Total requests answered (including pings and failures).
    pub requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests whose deadline expired while queued for admission.
    pub expired: u64,
    /// Malformed or invalid requests.
    pub errors: u64,
    /// Requests that consulted the result cache and missed.
    pub cache_misses: u64,
    /// Entries dropped from the cache: LRU evictions plus invalidations
    /// forced by `update` requests.
    pub cache_evictions: u64,
    /// Entries resident in the cache when the snapshot was taken.
    pub cache_len: u64,
}

#[derive(Default)]
struct ServeStats {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    expired: AtomicU64,
    errors: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self, cache_len: usize) -> ServeSummary {
        ServeSummary {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_len: cache_len as u64,
        }
    }
}

/// Counting semaphore for admission control. Waiters honour a deadline so a
/// request cannot be stuck in the queue past its budget.
struct Gate {
    slots: Mutex<usize>,
    cv: Condvar,
    capacity: usize,
}

impl Gate {
    fn new(capacity: usize) -> Gate {
        Gate {
            slots: Mutex::new(0),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Waits for a slot. Returns `false` if `deadline` passes first.
    fn acquire(&self, deadline: Option<Instant>) -> bool {
        let mut in_flight = self.slots.lock().expect("gate lock");
        loop {
            if *in_flight < self.capacity {
                *in_flight += 1;
                return true;
            }
            match deadline {
                None => in_flight = self.cv.wait(in_flight).expect("gate lock"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    in_flight = self
                        .cv
                        .wait_timeout(in_flight, d - now)
                        .expect("gate lock")
                        .0;
                }
            }
        }
    }

    fn release(&self) {
        let mut in_flight = self.slots.lock().expect("gate lock");
        *in_flight = in_flight.saturating_sub(1);
        drop(in_flight);
        self.cv.notify_one();
    }
}

/// RAII slot holder so the gate is released on every return path.
struct GateGuard<'a>(&'a Gate);

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A complete answer worth replaying: the MQC sets plus the command-specific
/// extras (query universe size, top-k round count, …). The command and its
/// query vertices are kept so `update` can decide which entries survive a
/// graph mutation.
struct CachedOutcome {
    cmd: String,
    vertices: Vec<u32>,
    mqcs: Vec<Vec<u32>>,
    extra: Vec<(String, Value)>,
}

/// Least-recently-used result cache. Capacity is small (hundreds), so the
/// O(capacity) eviction scan is cheaper than an intrusive list and keeps the
/// structure trivially correct.
struct ResultCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, Arc<CachedOutcome>)>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<Arc<CachedOutcome>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(used, outcome)| {
            *used = tick;
            Arc::clone(outcome)
        })
    }

    /// Inserts an entry, evicting the least-recently-used one at capacity.
    /// Returns how many entries were evicted (0 or 1) so the daemon's
    /// eviction counter stays exact.
    fn insert(&mut self, key: String, outcome: Arc<CachedOutcome>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = 1;
            }
        }
        self.map.insert(key, (self.tick, outcome));
        evicted
    }

    /// Rewrites every entry through `migrate`: `Some(new_key)` keeps the
    /// entry (possibly under a different key, preserving its recency),
    /// `None` drops it. Returns how many entries were dropped. This is how
    /// `update` re-keys surviving answers under the new fingerprint.
    fn retain_rekey<F>(&mut self, mut migrate: F) -> u64
    where
        F: FnMut(&str, &CachedOutcome) -> Option<String>,
    {
        let mut dropped = 0;
        let entries: Vec<_> = self.map.drain().collect();
        for (key, (used, outcome)) in entries {
            match migrate(&key, &outcome) {
                Some(new_key) => {
                    self.map.insert(new_key, (used, outcome));
                }
                None => dropped += 1,
            }
        }
        dropped
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// How a connection thread pokes the blocked `accept` loop after setting the
/// shutdown flag: a throwaway self-connection.
enum WakeTarget {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl WakeTarget {
    fn wake(&self) {
        match self {
            WakeTarget::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            WakeTarget::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

/// Everything a connection thread needs, shared behind one `Arc`.
struct ServerState {
    /// The current graph snapshot. Computations take a brief read lock to
    /// clone the `Arc` and then work lock-free on their snapshot; `update`
    /// swaps in a freshly prepared graph under the write lock.
    prepared: RwLock<Arc<PreparedGraph>>,
    /// Serialises `update` requests end to end (apply → prepare → swap →
    /// cache re-key) so two concurrent deltas cannot interleave.
    update_lock: Mutex<()>,
    settings: ServeSettings,
    cache: Mutex<ResultCache>,
    gate: Gate,
    stats: ServeStats,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    wake: WakeTarget,
}

impl ServerState {
    fn snapshot(&self) -> Arc<PreparedGraph> {
        Arc::clone(&self.prepared.read().expect("prepared lock"))
    }
}

/// A connected client stream, TCP or Unix.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Runs the daemon on an already-bound TCP listener until a `shutdown`
/// request arrives. Binding is the caller's job so tests and the CLI can
/// both use port 0 and learn the real address before the loop starts.
pub fn serve_tcp(listener: TcpListener, graph: Graph, settings: ServeSettings) -> ServeSummary {
    let wake = WakeTarget::Tcp(
        listener
            .local_addr()
            .expect("bound listener has an address"),
    );
    serve_on(Listener::Tcp(listener), wake, graph, settings)
}

/// Runs the daemon on a Unix socket path until a `shutdown` request
/// arrives. The socket file is removed when the daemon exits.
#[cfg(unix)]
pub fn serve_unix(
    path: &std::path::Path,
    graph: Graph,
    settings: ServeSettings,
) -> std::io::Result<ServeSummary> {
    let listener = UnixListener::bind(path)?;
    let summary = serve_on(
        Listener::Unix(listener),
        WakeTarget::Unix(path.to_path_buf()),
        graph,
        settings,
    );
    let _ = std::fs::remove_file(path);
    Ok(summary)
}

fn serve_on(
    listener: Listener,
    wake: WakeTarget,
    graph: Graph,
    settings: ServeSettings,
) -> ServeSummary {
    let bench_log = settings.bench_log.clone();
    let graph_label = settings.graph_label.clone();
    let state = Arc::new(ServerState {
        prepared: RwLock::new(Arc::new(PreparedGraph::new(graph))),
        update_lock: Mutex::new(()),
        gate: Gate::new(settings.max_inflight),
        cache: Mutex::new(ResultCache::new(settings.cache_capacity)),
        settings,
        stats: ServeStats::default(),
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        wake,
    });

    loop {
        match listener.accept() {
            Ok(stream) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn_state = Arc::clone(&state);
                state.active_connections.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &conn_state);
                    conn_state.active_connections.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure; keep serving.
            }
        }
    }

    // Let in-flight connections finish before reporting (bounded, so a hung
    // client cannot pin the process).
    let drain_start = Instant::now();
    while state.active_connections.load(Ordering::SeqCst) > 0
        && drain_start.elapsed() < Duration::from_secs(10)
    {
        std::thread::sleep(Duration::from_millis(2));
    }

    let cache_len = state.cache.lock().expect("cache lock").len();
    let summary = state.stats.snapshot(cache_len);
    if let Some(path) = bench_log {
        let _ = mqce_bench::runner::append_json(&path, &[serve_record(&graph_label, summary)]);
    }
    summary
}

/// The bench-log row the daemon appends at shutdown: a normal `RunRecord`
/// whose serve-specific counters are filled in and whose per-run fields are
/// zeroed (the daemon aggregates many heterogeneous requests).
fn serve_record(label: &str, summary: ServeSummary) -> mqce_bench::runner::RunRecord {
    mqce_bench::runner::RunRecord {
        dataset: label.to_string(),
        algorithm: "serve".to_string(),
        branching: "-".to_string(),
        backend: "-".to_string(),
        gamma: 0.0,
        theta: 0,
        max_round: 0,
        threads: 0,
        s2_backend: "-".to_string(),
        s2_timed_out: false,
        s2_predicted_millis: Vec::new(),
        s1_millis: 0.0,
        s2_millis: 0.0,
        s1_outputs: 0,
        mqcs: 0,
        mqc_min: 0,
        mqc_max: 0,
        mqc_avg: 0.0,
        branches: 0,
        timed_out: false,
        thread_stats: Vec::new(),
        serve_requests: summary.requests,
        serve_cache_hits: summary.cache_hits,
        serve_cache_misses: summary.cache_misses,
        serve_cache_evictions: summary.cache_evictions,
        serve_cache_len: summary.cache_len,
        updates_applied: 0,
        dirty_subproblems: 0,
        full_recompute_millis: 0.0,
        alloc_count: 0,
        peak_alloc_bytes: 0,
        stats: Default::default(),
    }
}

fn handle_connection(stream: Stream, state: &Arc<ServerState>) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(state, &line);
        writer.write_all(response.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            state.wake.wake();
            break;
        }
    }
    Ok(())
}

fn handle_line(state: &ServerState, line: &str) -> (Response, bool) {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    match Request::parse_line(line) {
        Err(e) => {
            state.stats.errors.fetch_add(1, Ordering::Relaxed);
            (Response::failure(None, e), false)
        }
        Ok(req) => handle_request(state, req),
    }
}

fn handle_request(state: &ServerState, req: Request) -> (Response, bool) {
    let arrival = Instant::now();
    match req.cmd.as_str() {
        "ping" => (ping_response(state, &req), false),
        // Updates mutate the graph, so they bypass the result cache entirely
        // (rather: they rewrite it) and are never stored in it.
        "update" => {
            let response = update_response(state, &req, arrival);
            if !response.ok {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            (response, false)
        }
        "shutdown" => (
            Response {
                id: req.id,
                ok: true,
                ..Response::default()
            },
            true,
        ),
        _ => {
            let response = compute_response(state, req, arrival);
            if !response.ok {
                state.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            (response, false)
        }
    }
}

fn ping_response(state: &ServerState, req: &Request) -> Response {
    let cache_len = state.cache.lock().expect("cache lock").len();
    let stats = state.stats.snapshot(cache_len);
    let prepared = state.snapshot();
    let g = prepared.graph();
    let extra = vec![
        (
            "fingerprint".to_string(),
            Value::Str(format!("{:016x}", prepared.fingerprint())),
        ),
        (
            "graph".to_string(),
            Value::Str(state.settings.graph_label.clone()),
        ),
        ("vertices".to_string(), Value::Num(g.num_vertices() as f64)),
        ("edges".to_string(), Value::Num(g.num_edges() as f64)),
        (
            "degeneracy".to_string(),
            Value::Num(prepared.degeneracy() as f64),
        ),
        ("requests".to_string(), Value::Num(stats.requests as f64)),
        (
            "cache_hits".to_string(),
            Value::Num(stats.cache_hits as f64),
        ),
        (
            "cache_misses".to_string(),
            Value::Num(stats.cache_misses as f64),
        ),
        (
            "cache_evictions".to_string(),
            Value::Num(stats.cache_evictions as f64),
        ),
        ("cache_len".to_string(), Value::Num(stats.cache_len as f64)),
        (
            "cache_entries".to_string(),
            Value::Num(stats.cache_len as f64),
        ),
    ];
    Response {
        id: req.id.clone(),
        ok: true,
        extra,
        ..Response::default()
    }
}

/// Handles an `update` request: applies the [`GraphDelta`] to the current
/// snapshot, recomputes the core decomposition (reporting which vertices
/// changed core number), swaps in the freshly prepared graph — the
/// fingerprint is recomputed from the mutated CSR, so it tracks the graph
/// exactly — and re-keys the result cache. A cached `query` answer whose
/// vertices all lie outside the dirty two-hop closure cannot have changed
/// (every affected maximal quasi-clique lives inside that closure), so it
/// survives under the new fingerprint; every other entry is invalidated.
fn update_response(state: &ServerState, req: &Request, arrival: Instant) -> Response {
    if req.insert.is_empty() && req.delete.is_empty() {
        return Response::failure(
            req.id.clone(),
            "`update` needs a non-empty `insert` or `delete` list",
        );
    }
    let delta = GraphDelta::new(req.insert.clone(), req.delete.clone());

    // One update at a time: apply → prepare → swap → re-key is atomic with
    // respect to other updates. Readers keep using their snapshots.
    let _updating = state.update_lock.lock().expect("update lock");
    let old = state.snapshot();
    let old_fingerprint = old.fingerprint();
    let new_graph = delta.apply(old.graph());
    let mut scratch = SubproblemScratch::new();
    let dirty = dirty_two_hop_closure(old.graph(), &new_graph, &delta, &mut scratch);
    let core_update = update_core_decomposition(old.cores(), &new_graph);
    let prepared = Arc::new(PreparedGraph::with_cores(new_graph, core_update.cores));
    let new_fingerprint = prepared.fingerprint();
    *state.prepared.write().expect("prepared lock") = Arc::clone(&prepared);

    // Re-key the cache: only `query` answers fully outside the dirty
    // closure are still valid. Anything else (whole-graph enumerations,
    // top-k answers, queries touching the closure, leftovers from even
    // older fingerprints) is dropped and counted as an eviction.
    let old_prefix = format!("{old_fingerprint:016x}|");
    let new_prefix = format!("{new_fingerprint:016x}|");
    let (invalidated, kept) = {
        let mut cache = state.cache.lock().expect("cache lock");
        let invalidated = cache.retain_rekey(|key, outcome| {
            let rest = key.strip_prefix(old_prefix.as_str())?;
            let unaffected = outcome.cmd == "query"
                && !outcome.vertices.is_empty()
                && outcome
                    .vertices
                    .iter()
                    .all(|v| dirty.binary_search(v).is_err());
            unaffected.then(|| format!("{new_prefix}{rest}"))
        });
        (invalidated, cache.len())
    };
    state
        .stats
        .cache_evictions
        .fetch_add(invalidated, Ordering::Relaxed);

    let g = prepared.graph();
    Response {
        id: req.id.clone(),
        ok: true,
        elapsed_ms: arrival.elapsed().as_secs_f64() * 1e3,
        extra: vec![
            (
                "fingerprint".to_string(),
                Value::Str(format!("{new_fingerprint:016x}")),
            ),
            (
                "previous_fingerprint".to_string(),
                Value::Str(format!("{old_fingerprint:016x}")),
            ),
            (
                "updates_applied".to_string(),
                Value::Num(delta.len() as f64),
            ),
            ("dirty".to_string(), Value::Num(dirty.len() as f64)),
            (
                "core_changed".to_string(),
                Value::Num(core_update.changed.len() as f64),
            ),
            ("vertices".to_string(), Value::Num(g.num_vertices() as f64)),
            ("edges".to_string(), Value::Num(g.num_edges() as f64)),
            (
                "cache_invalidated".to_string(),
                Value::Num(invalidated as f64),
            ),
            ("cache_kept".to_string(), Value::Num(kept as f64)),
        ],
        ..Response::default()
    }
}

fn build_request_config(req: &Request) -> Result<mqce_core::MqceConfig, String> {
    let config = mqce_core::MqceConfig::new(req.gamma, req.theta)
        .map_err(|e| e.to_string())?
        .with_algorithm(crate::parse_algorithm(req.algorithm.as_deref()).map_err(stringify)?)
        .with_branching(crate::parse_branching(req.branching.as_deref()).map_err(stringify)?)
        .with_backend(crate::parse_backend(req.backend.as_deref()).map_err(stringify)?)
        .with_s2_backend(crate::parse_s2_backend(req.s2_backend.as_deref()).map_err(stringify)?);
    Ok(config)
}

fn stringify(e: CliError) -> String {
    e.to_string()
}

fn compute_response(state: &ServerState, req: Request, arrival: Instant) -> Response {
    let config = match build_request_config(&req) {
        Ok(config) => config,
        Err(e) => return Response::failure(req.id, e),
    };
    if req.cmd == "query" && req.vertices.is_empty() {
        return Response::failure(req.id, "`query` needs a non-empty `vertices` list");
    }
    let deadline = req
        .deadline_ms
        .map(|ms| arrival + Duration::from_millis(ms));
    // The snapshot pins one graph version for the whole request: the cache
    // key, the enumeration and the stored outcome all agree even if an
    // update lands mid-request.
    let prepared = state.snapshot();
    let key = req.cache_key(prepared.fingerprint());

    if !req.no_cache {
        let hit = state.cache.lock().expect("cache lock").get(&key);
        match hit {
            Some(outcome) => {
                state.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                return render(&req, &outcome, true, false, false, arrival);
            }
            None => {
                state.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    if !state.gate.acquire(deadline) {
        // The budget ran out while queued: answer promptly and honestly
        // rather than running an enumeration the client stopped waiting for.
        state.stats.expired.fetch_add(1, Ordering::Relaxed);
        return Response {
            id: req.id,
            ok: true,
            best_effort: true,
            elapsed_ms: arrival.elapsed().as_secs_f64() * 1e3,
            ..Response::default()
        };
    }
    let _slot = GateGuard(&state.gate);

    // Whatever budget survived queueing becomes the pipeline's time limit; a
    // fully spent budget becomes a zero limit, which the pipeline answers
    // immediately with the best-effort flags set.
    let config = match deadline {
        Some(d) => config.with_time_limit(d.saturating_duration_since(Instant::now())),
        None => config,
    };

    let (outcome, best_effort, s2_timed_out) = match req.cmd.as_str() {
        "enumerate" => {
            let threads = crate::resolve_threads(req.threads);
            let result = if threads > 1 {
                enumerate_mqcs_shared_parallel(&prepared, &config, threads)
            } else {
                enumerate_mqcs_shared(&prepared, &config)
            };
            let (timed_out, s2_timed_out) = (result.timed_out(), result.s2_timed_out());
            let outcome = CachedOutcome {
                cmd: req.cmd.clone(),
                vertices: Vec::new(),
                mqcs: result.mqcs,
                extra: vec![("s2_engine".to_string(), Value::Str(result.s2.to_string()))],
            };
            (outcome, timed_out || s2_timed_out, s2_timed_out)
        }
        "query" => {
            let result =
                match mqce_core::find_mqcs_containing(prepared.graph(), &req.vertices, &config) {
                    Ok(result) => result,
                    Err(e) => return Response::failure(req.id, e.to_string()),
                };
            let s2_timed_out = result.s2_timed_out;
            let outcome = CachedOutcome {
                cmd: req.cmd.clone(),
                vertices: req.vertices.clone(),
                mqcs: result.mqcs,
                extra: vec![(
                    "universe".to_string(),
                    Value::Num(result.universe_size as f64),
                )],
            };
            (outcome, s2_timed_out, s2_timed_out)
        }
        "topk" => {
            let result = match mqce_core::find_largest_mqcs(
                prepared.graph(),
                req.gamma,
                req.k,
                Some(config),
            ) {
                Ok(result) => result,
                Err(e) => return Response::failure(req.id, e.to_string()),
            };
            let outcome = CachedOutcome {
                cmd: req.cmd.clone(),
                vertices: Vec::new(),
                mqcs: result.mqcs,
                extra: vec![
                    (
                        "final_theta".to_string(),
                        Value::Num(result.final_theta as f64),
                    ),
                    ("rounds".to_string(), Value::Num(result.rounds as f64)),
                ],
            };
            // Top-k does not surface its inner S2 flags; a spent deadline is
            // still detectable from the clock.
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            (outcome, expired, false)
        }
        other => return Response::failure(req.id, format!("unknown command {other:?}")),
    };

    // A deadline that expired mid-run means the answer may be partial even
    // if no individual stage reported it.
    let best_effort = best_effort || deadline.is_some_and(|d| Instant::now() >= d);

    let outcome = Arc::new(outcome);
    if !req.no_cache && !best_effort && !s2_timed_out {
        let evicted = state
            .cache
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&outcome));
        state
            .stats
            .cache_evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }
    render(&req, &outcome, false, best_effort, s2_timed_out, arrival)
}

fn render(
    req: &Request,
    outcome: &CachedOutcome,
    cached: bool,
    best_effort: bool,
    s2_timed_out: bool,
    arrival: Instant,
) -> Response {
    Response {
        id: req.id.clone(),
        ok: true,
        error: None,
        cached,
        best_effort,
        s2_timed_out,
        elapsed_ms: arrival.elapsed().as_secs_f64() * 1e3,
        count: outcome.mqcs.len(),
        mqcs: req.sets.then(|| outcome.mqcs.clone()),
        extra: outcome.extra.clone(),
    }
}

// ---------------------------------------------------------------------------
// CLI entry points
// ---------------------------------------------------------------------------

fn io_err(e: std::io::Error) -> CliError {
    CliError::Io(e.to_string())
}

/// `mqce serve <graph> [--addr HOST:PORT | --socket PATH] ...`
pub(crate) fn cmd_serve<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[
        "addr",
        "socket",
        "max-inflight",
        "cache-capacity",
        "bench-log",
        "quiet",
    ])?;
    parsed.no_extra_positionals(2)?;
    let path = parsed.positional(1, "graph")?;
    let graph = crate::load_graph(path)?;
    let settings = ServeSettings {
        max_inflight: parsed.get_usize("max-inflight", 2)?.max(1),
        cache_capacity: parsed.get_usize("cache-capacity", 128)?,
        bench_log: parsed.get("bench-log").map(PathBuf::from),
        graph_label: path.to_string(),
    };
    let quiet = parsed.switch("quiet");

    let summary = if let Some(socket) = parsed.get("socket") {
        #[cfg(unix)]
        {
            if !quiet {
                writeln!(
                    out,
                    "listening        {socket} ({} vertices, {} edges)",
                    graph.num_vertices(),
                    graph.num_edges()
                )
                .map_err(io_err)?;
                out.flush().map_err(io_err)?;
            }
            serve_unix(std::path::Path::new(socket), graph, settings).map_err(io_err)?
        }
        #[cfg(not(unix))]
        {
            return Err(CliError::Params(format!(
                "--socket {socket} needs Unix domain sockets; use --addr on this platform"
            )));
        }
    } else {
        let addr = parsed.get("addr").unwrap_or("127.0.0.1:7621");
        let listener = TcpListener::bind(addr)
            .map_err(|e| CliError::Io(format!("cannot bind {addr}: {e}")))?;
        if !quiet {
            writeln!(
                out,
                "listening        {} ({} vertices, {} edges)",
                listener.local_addr().map_err(io_err)?,
                graph.num_vertices(),
                graph.num_edges()
            )
            .map_err(io_err)?;
            out.flush().map_err(io_err)?;
        }
        serve_tcp(listener, graph, settings)
    };

    if !quiet {
        writeln!(
            out,
            "served           requests={} cache_hits={} cache_misses={} cache_evictions={} cache_len={} expired={} errors={}",
            summary.requests,
            summary.cache_hits,
            summary.cache_misses,
            summary.cache_evictions,
            summary.cache_len,
            summary.expired,
            summary.errors
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn connect_with_retry(parsed: &ParsedArgs) -> Result<Stream, CliError> {
    let retry = Duration::from_secs(parsed.get_u64("retry-secs", 0)?);
    let give_up = Instant::now() + retry;
    let connect = || -> std::io::Result<Stream> {
        if let Some(socket) = parsed.get("socket") {
            #[cfg(unix)]
            {
                return UnixStream::connect(socket).map(Stream::Unix);
            }
            #[cfg(not(unix))]
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    format!("--socket {socket} needs Unix domain sockets"),
                ));
            }
        }
        let addr = parsed.get("addr").unwrap_or("127.0.0.1:7621");
        TcpStream::connect(addr).map(Stream::Tcp)
    };
    loop {
        match connect() {
            Ok(stream) => return Ok(stream),
            Err(_) if Instant::now() < give_up => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(CliError::Io(format!("cannot connect to daemon: {e}"))),
        }
    }
}

/// Parses an `--insert`/`--delete` flag value: a comma-separated list of
/// `u-v` endpoint pairs, e.g. `0-3,7-12`.
fn parse_edge_list(parsed: &ParsedArgs, name: &str) -> Result<Vec<(u32, u32)>, CliError> {
    let Some(text) = parsed.get(name) else {
        return Ok(Vec::new());
    };
    let bad = |pair: &str| {
        CliError::Params(format!(
            "--{name}: `{pair}` is not a `u-v` edge (expected e.g. `0-3,7-12`)"
        ))
    };
    text.split(',')
        .map(str::trim)
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let (u, v) = pair.split_once('-').ok_or_else(|| bad(pair))?;
            Ok((
                u.trim().parse::<u32>().map_err(|_| bad(pair))?,
                v.trim().parse::<u32>().map_err(|_| bad(pair))?,
            ))
        })
        .collect()
}

/// Builds the single request described by `mqce client --cmd ...` flags.
fn request_from_flags(parsed: &ParsedArgs, cmd: &str) -> Result<Request, CliError> {
    Ok(Request {
        id: parsed.get("id").map(str::to_string),
        cmd: cmd.to_ascii_lowercase(),
        gamma: parsed.get_f64("gamma", 0.9)?,
        theta: parsed.get_usize("theta", 2)?,
        k: parsed.get_usize("k", 10)?,
        vertices: parsed.get_vertex_list("vertices")?,
        insert: parse_edge_list(parsed, "insert")?,
        delete: parse_edge_list(parsed, "delete")?,
        algorithm: parsed.get("algorithm").map(str::to_string),
        branching: parsed.get("branching").map(str::to_string),
        backend: parsed.get("backend").map(str::to_string),
        s2_backend: parsed.get("s2-backend").map(str::to_string),
        threads: parsed.get_usize("threads", 1)?,
        deadline_ms: match parsed.get("deadline-ms") {
            Some(_) => Some(parsed.get_u64("deadline-ms", 0)?),
            None => None,
        },
        no_cache: parsed.switch("no-cache"),
        sets: parsed.switch("sets"),
    })
}

/// `mqce client (--addr HOST:PORT | --socket PATH) [--cmd C ...]
/// [--requests FILE] [--shutdown]` — sends requests to a running daemon and
/// prints each JSON response line verbatim. Exits with an error if any
/// response reports `ok=false`, so scripts can rely on the exit code.
pub(crate) fn cmd_client<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[
        "addr",
        "socket",
        "retry-secs",
        "requests",
        "cmd",
        "id",
        "gamma",
        "theta",
        "k",
        "vertices",
        "insert",
        "delete",
        "algorithm",
        "branching",
        "backend",
        "s2-backend",
        "threads",
        "deadline-ms",
        "no-cache",
        "sets",
        "shutdown",
    ])?;
    parsed.no_extra_positionals(1)?;

    let stream = connect_with_retry(parsed)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
    let mut writer = BufWriter::new(stream);
    let mut any_failed = false;
    let mut exchange = |line: &str, out: &mut W, any_failed: &mut bool| -> Result<(), CliError> {
        writer.write_all(line.as_bytes()).map_err(io_err)?;
        writer.write_all(b"\n").map_err(io_err)?;
        writer.flush().map_err(io_err)?;
        let mut response = String::new();
        let n = reader.read_line(&mut response).map_err(io_err)?;
        if n == 0 {
            return Err(CliError::Io(
                "daemon closed the connection before responding".to_string(),
            ));
        }
        let response = response.trim_end();
        writeln!(out, "{response}").map_err(io_err)?;
        match Response::parse_line(response) {
            Ok(resp) if !resp.ok => *any_failed = true,
            Ok(_) => {}
            Err(e) => return Err(CliError::Other(format!("unparseable response: {e}"))),
        }
        Ok(())
    };

    if let Some(file) = parsed.get("requests") {
        let text = std::fs::read_to_string(file)
            .map_err(|e| CliError::Io(format!("cannot read {file}: {e}")))?;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            // Validate locally so a typo is caught before it hits the wire.
            let request = Request::parse_line(line).map_err(CliError::Other)?;
            exchange(&request.to_line(), out, &mut any_failed)?;
        }
    } else if let Some(cmd) = parsed.get("cmd") {
        let request = request_from_flags(parsed, cmd)?;
        exchange(&request.to_line(), out, &mut any_failed)?;
    } else if !parsed.switch("shutdown") {
        return Err(CliError::Params(
            "nothing to send: give --cmd, --requests or --shutdown".to_string(),
        ));
    }

    if parsed.switch("shutdown") {
        let request = Request {
            cmd: "shutdown".to_string(),
            ..Request::default()
        };
        exchange(&request.to_line(), out, &mut any_failed)?;
    }

    if any_failed {
        return Err(CliError::Other(
            "daemon returned at least one error response".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_capacity_and_times_out_waiters() {
        let gate = Gate::new(2);
        assert!(gate.acquire(None));
        assert!(gate.acquire(None));
        // Third caller with an already-spent budget is turned away quickly.
        let start = Instant::now();
        assert!(!gate.acquire(Some(Instant::now() + Duration::from_millis(20))));
        assert!(start.elapsed() < Duration::from_secs(2));
        // After a release, the slot is available again.
        gate.release();
        assert!(gate.acquire(Some(Instant::now() + Duration::from_millis(20))));
    }

    fn outcome(cmd: &str, vertices: &[u32]) -> Arc<CachedOutcome> {
        Arc::new(CachedOutcome {
            cmd: cmd.to_string(),
            vertices: vertices.to_vec(),
            mqcs: Vec::new(),
            extra: Vec::new(),
        })
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        assert_eq!(cache.insert("a".to_string(), outcome("query", &[1])), 0);
        assert_eq!(cache.insert("b".to_string(), outcome("query", &[2])), 0);
        assert!(cache.get("a").is_some()); // refresh `a`
        assert_eq!(cache.insert("c".to_string(), outcome("query", &[3])), 1); // evicts `b`
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_stores_nothing() {
        let mut cache = ResultCache::new(0);
        assert_eq!(cache.insert("a".to_string(), outcome("query", &[1])), 0);
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn retain_rekey_migrates_survivors_and_counts_drops() {
        let mut cache = ResultCache::new(8);
        cache.insert("00aa|query|x".to_string(), outcome("query", &[5]));
        cache.insert("00aa|query|y".to_string(), outcome("query", &[2]));
        cache.insert("00aa|enumerate|z".to_string(), outcome("enumerate", &[]));
        cache.insert("dead|query|w".to_string(), outcome("query", &[9]));
        // Mimic an update: old fp `00aa`, new fp `00bb`, dirty = {2}.
        let dirty = [2u32];
        let dropped = cache.retain_rekey(|key, entry| {
            let rest = key.strip_prefix("00aa|")?;
            let unaffected = entry.cmd == "query"
                && !entry.vertices.is_empty()
                && entry
                    .vertices
                    .iter()
                    .all(|v| dirty.binary_search(v).is_err());
            unaffected.then(|| format!("00bb|{rest}"))
        });
        // Dropped: the dirty query, the enumerate, and the stale-fp entry.
        assert_eq!(dropped, 3);
        assert_eq!(cache.len(), 1);
        assert!(cache.get("00bb|query|x").is_some());
        assert!(cache.get("00aa|query|x").is_none());
    }
}
