//! `mqce` — command-line front-end for the maximal quasi-clique enumeration
//! library. See `mqce help` for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mqce_cli::run(&args, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
