//! Multi-process sharded enumeration: the `mqce shard-worker` process and
//! the coordinator behind `mqce enumerate --shards N`.
//!
//! The coordinator plans cost-balanced anchor shards with
//! [`mqce_core::plan_shards`], serialises each shard's two-hop-closed
//! [`GraphSlice`] and ships it to a worker process
//! over the same newline-JSON protocol the daemon speaks (extended with
//! `shard_run` requests and `shard_result` set streams — see
//! [`crate::protocol`]). Workers are this very binary re-invoked as
//! `mqce shard-worker`: they decode the slice, run the unchanged streaming
//! DC drivers via [`mqce_core::run_shard`], and stream the shard-local
//! maximal family back. The coordinator then restores exact global
//! maximality with [`mqce_core::merge_shard_families`] — one maximality
//! engine restricted to the cross-shard frontier — so the merged family is
//! byte-identical to a single-process run.
//!
//! Fault tolerance: every worker is handshaken (`ping` with a stamped
//! protocol version) before work is dispatched, and a worker that dies
//! mid-shard is respawned and its shard retried exactly once. If the retry
//! is also lost the coordinator gives the shard up and reports the run as
//! best-effort instead of hanging or crashing.

use std::io::{BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mqce_core::{merge_shard_families, plan_shards, run_shard, MqceConfig, PreparedGraph};
use mqce_graph::{Graph, GraphSlice};
use serde::Value;

use crate::args::ParsedArgs;
use crate::protocol::{decode_set_stream, encode_set_stream, Request, Response, PROTOCOL_VERSION};
use crate::serve::{build_request_config, read_line_bounded, LineRead};
use crate::CliError;

/// Line cap for the worker protocol. Slice payloads carry whole CSR arrays,
/// so the cap is far above the daemon's request cap — but still bounded, so
/// a corrupt length prefix cannot balloon worker memory.
const WORKER_MAX_LINE_BYTES: usize = 64 << 20;

fn io_err(e: std::io::Error) -> CliError {
    CliError::Io(e.to_string())
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// `mqce shard-worker [--fault-injection]` — a coordinator-spawned worker
/// process: answers newline-JSON requests on stdin/stdout until EOF or a
/// `shutdown` request.
pub(crate) fn cmd_shard_worker<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&["fault-injection"])?;
    parsed.no_extra_positionals(1)?;
    let fault_injection = parsed.switch("fault-injection");
    let stdin = std::io::stdin();
    let mut reader = BufReader::new(stdin.lock());
    loop {
        let line = match read_line_bounded(&mut reader, WORKER_MAX_LINE_BYTES).map_err(io_err)? {
            LineRead::Eof => break,
            LineRead::TooLong => {
                let response = Response::failure(
                    None,
                    format!("request line exceeds {WORKER_MAX_LINE_BYTES} bytes"),
                );
                writeln!(out, "{}", response.to_line()).map_err(io_err)?;
                out.flush().map_err(io_err)?;
                break;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = worker_handle_line(&line, fault_injection);
        writeln!(out, "{}", response.to_line()).map_err(io_err)?;
        out.flush().map_err(io_err)?;
        if quit {
            break;
        }
    }
    Ok(())
}

fn worker_handle_line(line: &str, fault_injection: bool) -> (Response, bool) {
    let req = match Request::parse_line(line) {
        Err(e) => return (Response::failure(None, e), false),
        Ok(req) => req,
    };
    if let Some(theirs) = req.version {
        if theirs != PROTOCOL_VERSION {
            return (Response::version_mismatch(req.id, theirs), false);
        }
    }
    match req.cmd.as_str() {
        "ping" => {
            let mut response = Response {
                id: req.id,
                ok: true,
                ..Response::default()
            };
            response.extra.push((
                "protocol_version".to_string(),
                Value::Num(PROTOCOL_VERSION as f64),
            ));
            (response, false)
        }
        "shutdown" => (
            Response {
                id: req.id,
                ok: true,
                ..Response::default()
            },
            true,
        ),
        "shard_run" => (shard_run_response(&req, fault_injection), false),
        other => (
            Response::failure(
                req.id,
                format!("shard worker cannot handle command {other:?}"),
            ),
            false,
        ),
    }
}

/// Executes one `shard_run` request: decode the slice, run the DC drivers
/// over the shard's anchors, and answer with a `shard_result` set stream.
fn shard_run_response(req: &Request, fault_injection: bool) -> Response {
    let start = Instant::now();
    let mut config = match build_request_config(req) {
        Ok(config) => config,
        Err(e) => return Response::failure(req.id.clone(), e),
    };
    if let Some(fault) = req.fault.as_deref() {
        if !fault_injection {
            return Response::failure(
                req.id.clone(),
                "fault injection is disabled (spawn the worker with --fault-injection)",
            );
        }
        if fault == "die" {
            // Simulates a crashed worker: exit without answering, so the
            // coordinator sees EOF mid-shard and exercises its retry path.
            std::process::exit(3);
        } else if let Some(anchor) = fault.strip_prefix("panic:") {
            match anchor.parse::<u32>() {
                Ok(v) => config.params.fail_anchor = Some(v),
                Err(_) => {
                    return Response::failure(
                        req.id.clone(),
                        format!("bad fault anchor {anchor:?} (expected panic:<vertex>)"),
                    )
                }
            }
        } else {
            return Response::failure(
                req.id.clone(),
                format!("unknown worker fault mode {fault:?}"),
            );
        }
    }
    if let Some(ms) = req.deadline_ms {
        config = config.with_time_limit(Duration::from_millis(ms));
    }
    let Some(encoded) = req.slice.as_deref() else {
        return Response::failure(req.id.clone(), "`shard_run` needs a `slice` payload");
    };
    let slice = match GraphSlice::decode(encoded) {
        Ok(slice) => slice,
        Err(e) => return Response::failure(req.id.clone(), format!("bad slice payload: {e}")),
    };
    if req.ranks.len() != slice.len() {
        return Response::failure(
            req.id.clone(),
            "`ranks` must carry one rank per slice vertex",
        );
    }
    if req.anchors.iter().any(|&a| a as usize >= slice.len()) {
        return Response::failure(req.id.clone(), "anchor id outside the slice");
    }
    let threads = crate::resolve_threads(req.threads);
    let family = run_shard(&slice, &req.anchors, &req.ranks, &config, threads);
    let contained = family.stats.subproblem_panics;
    let mut extra = vec![
        ("shard_id".to_string(), Value::Num(req.shard_id as f64)),
        ("set_stream".to_string(), encode_set_stream(&family.mqcs)),
        (
            "branches".to_string(),
            Value::Num(family.stats.branches as f64),
        ),
    ];
    if contained > 0 {
        extra.push(("contained_panics".to_string(), Value::Num(contained as f64)));
        if let Some(anchor) = family.stats.last_panicked_anchor {
            extra.push(("panicked_anchor".to_string(), Value::Num(anchor as f64)));
        }
    }
    Response {
        id: req.id.clone(),
        ok: true,
        best_effort: family.timed_out || contained > 0,
        s2_timed_out: family.timed_out,
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        count: family.mqcs.len(),
        extra,
        ..Response::default()
    }
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// One spawned worker process with its protocol pipes. Dropped workers are
/// killed and reaped unconditionally, so the coordinator can never hang on a
/// wedged child.
struct Worker {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
    writer: std::process::ChildStdin,
}

impl Worker {
    /// Spawns this very binary as `mqce shard-worker` and handshakes the
    /// protocol version before any work is dispatched.
    fn spawn(fault_injection: bool) -> Result<Worker, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the mqce binary for worker spawn: {e}"))?;
        let mut command = Command::new(exe);
        command
            .arg("shard-worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if fault_injection {
            command.arg("--fault-injection");
        }
        let mut child = command
            .spawn()
            .map_err(|e| format!("cannot spawn shard worker: {e}"))?;
        let writer = child.stdin.take().expect("stdin was piped");
        let reader = BufReader::new(child.stdout.take().expect("stdout was piped"));
        let mut worker = Worker {
            child,
            reader,
            writer,
        };
        worker.handshake()?;
        Ok(worker)
    }

    /// Sends one request line and reads one response line.
    fn round_trip(&mut self, req: &Request) -> Result<Response, String> {
        writeln!(self.writer, "{}", req.to_line())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("worker write failed: {e}"))?;
        match read_line_bounded(&mut self.reader, WORKER_MAX_LINE_BYTES)
            .map_err(|e| format!("worker read failed: {e}"))?
        {
            LineRead::Line(line) => Response::parse_line(&line),
            LineRead::Eof => Err("worker exited before answering".to_string()),
            LineRead::TooLong => Err("worker response exceeded the line cap".to_string()),
        }
    }

    /// Protocol-version negotiation: a stamped `ping` must come back `ok`
    /// and report the version this build speaks.
    fn handshake(&mut self) -> Result<(), String> {
        let ping = Request {
            cmd: "ping".to_string(),
            version: Some(PROTOCOL_VERSION),
            ..Request::default()
        };
        let response = self.round_trip(&ping)?;
        if !response.ok {
            return Err(format!(
                "worker handshake failed: {}",
                response
                    .error
                    .unwrap_or_else(|| "unknown error".to_string())
            ));
        }
        match response.extra_num("protocol_version") {
            Some(v) if v == PROTOCOL_VERSION as f64 => Ok(()),
            other => Err(format!(
                "worker speaks protocol {other:?}, this build speaks v{PROTOCOL_VERSION}"
            )),
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let shutdown = Request {
            cmd: "shutdown".to_string(),
            ..Request::default()
        };
        let _ = writeln!(self.writer, "{}", shutdown.to_line());
        let _ = self.writer.flush();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What one shard's dispatch produced at the coordinator.
struct ShardDispatch {
    family: Vec<Vec<u32>>,
    millis: f64,
    best_effort: bool,
    /// Both attempts died: the shard's family is missing from the merge.
    lost: bool,
    retried: bool,
    branches: u64,
    error: Option<String>,
}

/// Runs one shard on a fresh worker, respawning and retrying exactly once
/// if the worker is lost mid-shard. A second loss gives the shard up as
/// best-effort instead of hanging.
fn dispatch_shard(req: &Request, fault_injection: bool) -> ShardDispatch {
    let start = Instant::now();
    let mut retried = false;
    let mut last_err = String::new();
    for attempt in 0..2 {
        retried = attempt > 0;
        let outcome = Worker::spawn(fault_injection).and_then(|mut worker| {
            let response = worker.round_trip(req)?;
            Ok(response)
        });
        match outcome {
            Ok(response) if response.ok => {
                let stream = response
                    .extra
                    .iter()
                    .find(|(k, _)| k == "set_stream")
                    .map(|(_, v)| v);
                let family = match stream.map(decode_set_stream) {
                    Some(Ok(family)) => family,
                    Some(Err(e)) => {
                        last_err = format!("bad shard_result set stream: {e}");
                        continue;
                    }
                    None => {
                        last_err = "shard_result carried no set_stream".to_string();
                        continue;
                    }
                };
                return ShardDispatch {
                    family,
                    millis: start.elapsed().as_secs_f64() * 1e3,
                    best_effort: response.best_effort,
                    lost: false,
                    retried,
                    branches: response.extra_num("branches").unwrap_or(0.0) as u64,
                    error: None,
                };
            }
            Ok(response) => {
                last_err = response
                    .error
                    .unwrap_or_else(|| "worker answered ok=false".to_string());
            }
            Err(e) => last_err = e,
        }
    }
    ShardDispatch {
        family: Vec::new(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        best_effort: true,
        lost: true,
        retried,
        branches: 0,
        error: Some(last_err),
    }
}

/// Resolves the per-shard fault payload of the coordinator's `--fault` flag:
/// `die:<shard>` targets one shard (and persists across its retry, so the
/// retry dies too and the run degrades to best-effort); `panic:<anchor>` is
/// broadcast — only the shard owning the anchor's subproblem panics, and the
/// panic is contained by the worker's DC drivers.
fn fault_for_shard(fault: Option<&str>, shard: usize) -> Result<Option<String>, CliError> {
    let Some(fault) = fault else { return Ok(None) };
    if let Some(target) = fault.strip_prefix("die:") {
        let target: usize = target.parse().map_err(|_| {
            CliError::Params(format!(
                "bad --fault target in {fault:?} (expected die:<shard>)"
            ))
        })?;
        Ok((shard == target).then(|| "die".to_string()))
    } else if fault
        .strip_prefix("panic:")
        .is_some_and(|a| a.parse::<u32>().is_ok())
    {
        Ok(Some(fault.to_string()))
    } else {
        Err(CliError::Params(format!(
            "unknown --fault mode {fault:?} (expected die:<shard> or panic:<anchor>)"
        )))
    }
}

/// The multi-process coordinator behind `mqce enumerate --shards N`: plans
/// cost-balanced shards, dispatches each to its own worker process in
/// parallel, and merges the returned families into the exact global maximal
/// family. Prints per-shard wall-clock and merge overhead alongside the
/// usual `maximal qcs` report.
#[allow(clippy::too_many_arguments)] // one flat call site in cmd_enumerate_sharded
pub(crate) fn run_coordinator<W: Write>(
    graph: &Graph,
    config: &MqceConfig,
    template: &Request,
    num_shards: usize,
    fault: Option<&str>,
    fault_injection: bool,
    print_sets: bool,
    verify: bool,
    out: &mut W,
) -> Result<(), CliError> {
    if fault.is_some() && !fault_injection {
        return Err(CliError::Params(
            "--fault needs --fault-injection".to_string(),
        ));
    }
    // Validate the fault syntax once, before any worker is spawned.
    fault_for_shard(fault, 0)?;

    let prepared = PreparedGraph::new(graph.clone());
    let plan = plan_shards(&prepared, config, num_shards).ok_or_else(|| {
        CliError::Params(
            "--shards needs a divide-and-conquer algorithm (dcfastqc or bdcfastqc)".to_string(),
        )
    })?;

    writeln!(out, "algorithm        {}", config.algorithm.name()).map_err(io_err)?;
    writeln!(
        out,
        "parameters       gamma={} theta={}",
        config.params.gamma, config.params.theta
    )
    .map_err(io_err)?;
    writeln!(out, "shards           {}", plan.shards.len()).map_err(io_err)?;

    let requests: Vec<Request> = plan
        .shards
        .iter()
        .map(|spec| {
            Ok(Request {
                cmd: "shard_run".to_string(),
                id: Some(format!("shard-{}", spec.index)),
                version: Some(PROTOCOL_VERSION),
                slice: Some(spec.slice.encode()),
                anchors: spec.anchors.clone(),
                ranks: spec.rank.clone(),
                shard_id: spec.index,
                fault: fault_for_shard(fault, spec.index)?,
                ..template.clone()
            })
        })
        .collect::<Result<_, CliError>>()?;

    // One worker process per shard, dispatched concurrently; each dispatch
    // owns its worker's lifecycle including the single respawn-and-retry.
    let dispatches: Vec<ShardDispatch> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| scope.spawn(move || dispatch_shard(req, fault_injection)))
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle.join().unwrap_or_else(|_| ShardDispatch {
                    family: Vec::new(),
                    millis: 0.0,
                    best_effort: true,
                    lost: true,
                    retried: false,
                    branches: 0,
                    error: Some("dispatch thread panicked".to_string()),
                })
            })
            .collect()
    });

    let mut best_effort = false;
    let mut families = Vec::with_capacity(dispatches.len());
    for (spec, dispatch) in plan.shards.iter().zip(&dispatches) {
        best_effort |= dispatch.best_effort;
        let status = if dispatch.lost {
            let reason = dispatch.error.as_deref().unwrap_or("lost worker");
            format!(" LOST ({reason}; retried once, giving up)")
        } else if dispatch.retried {
            " (lost worker; retried once)".to_string()
        } else if dispatch.best_effort {
            " (best-effort)".to_string()
        } else {
            String::new()
        };
        writeln!(
            out,
            "shard {:<3}        anchors={} est-cost={} sets={} branches={} {:.1}ms{}",
            spec.index,
            spec.anchors.len(),
            spec.estimated_cost,
            dispatch.family.len(),
            dispatch.branches,
            dispatch.millis,
            status
        )
        .map_err(io_err)?;
        families.push(dispatch.family.clone());
    }

    let merge_start = Instant::now();
    let merged = merge_shard_families(&plan, families, config);
    let merge_millis = merge_start.elapsed().as_secs_f64() * 1e3;
    writeln!(
        out,
        "merge            {merge_millis:.1}ms engine={}",
        merged.backend
    )
    .map_err(io_err)?;
    writeln!(out, "maximal qcs      {}", merged.mqcs.len()).map_err(io_err)?;
    if best_effort {
        writeln!(
            out,
            "WARNING          best-effort: a shard was lost or cut short; output may be incomplete"
        )
        .map_err(io_err)?;
    }
    if verify {
        let report = mqce_core::verify_mqc_set(graph, &merged.mqcs, config.params);
        writeln!(out, "verification     {report}").map_err(io_err)?;
        if !report.is_ok() {
            return Err(CliError::Other(format!("verification failed: {report}")));
        }
    }
    if print_sets {
        for mqc in &merged.mqcs {
            let formatted: Vec<String> = mqc.iter().map(|v| v.to_string()).collect();
            writeln!(out, "{}", formatted.join(" ")).map_err(io_err)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_targeting_resolves_per_shard() {
        assert_eq!(fault_for_shard(None, 0).unwrap(), None);
        assert_eq!(
            fault_for_shard(Some("die:1"), 1).unwrap(),
            Some("die".to_string())
        );
        assert_eq!(fault_for_shard(Some("die:1"), 0).unwrap(), None);
        assert_eq!(
            fault_for_shard(Some("panic:7"), 2).unwrap(),
            Some("panic:7".to_string())
        );
        assert!(fault_for_shard(Some("die:x"), 0).is_err());
        assert!(fault_for_shard(Some("explode"), 0).is_err());
    }

    #[test]
    fn worker_rejects_version_mismatch_and_bad_payloads() {
        let (resp, quit) = worker_handle_line(r#"{"cmd":"ping","version":99,"id":"h"}"#, false);
        assert!(!quit);
        assert!(!resp.ok);
        assert_eq!(resp.extra_str("error_kind"), Some("protocol_version"));

        let (resp, _) = worker_handle_line(r#"{"cmd":"shard_run"}"#, false);
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("slice"));

        let (resp, _) = worker_handle_line(r#"{"cmd":"shard_run","slice":"NOPE 1 2"}"#, false);
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("bad slice payload"));

        // Faults are refused without the gate.
        let (resp, _) = worker_handle_line(r#"{"cmd":"shard_run","fault":"die"}"#, false);
        assert!(!resp.ok);
        assert!(resp.error.unwrap().contains("fault injection is disabled"));

        let (resp, quit) = worker_handle_line(r#"{"cmd":"shutdown"}"#, false);
        assert!(resp.ok);
        assert!(quit);
    }

    #[test]
    fn worker_runs_a_real_shard_in_process() {
        use mqce_graph::generators::{community_graph, CommunityGraphParams};
        let g = community_graph(
            CommunityGraphParams {
                n: 80,
                num_communities: 6,
                p_intra: 0.9,
                inter_degree: 1.0,
            },
            99,
        );
        let config = MqceConfig::new(0.85, 4).unwrap();
        let prepared = PreparedGraph::new(g);
        let plan = plan_shards(&prepared, &config, 2).unwrap();
        let spec = &plan.shards[0];
        let req = Request {
            cmd: "shard_run".to_string(),
            gamma: 0.85,
            theta: 4,
            version: Some(PROTOCOL_VERSION),
            slice: Some(spec.slice.encode()),
            anchors: spec.anchors.clone(),
            ranks: spec.rank.clone(),
            shard_id: 0,
            ..Request::default()
        };
        let (resp, quit) = worker_handle_line(&req.to_line(), false);
        assert!(!quit);
        assert!(resp.ok, "{:?}", resp.error);
        let stream = resp
            .extra
            .iter()
            .find(|(k, _)| k == "set_stream")
            .map(|(_, v)| decode_set_stream(v).unwrap())
            .unwrap();
        let expected = run_shard(&spec.slice, &spec.anchors, &spec.rank, &config, 1);
        assert_eq!(stream, expected.mqcs);
        assert_eq!(resp.count, expected.mqcs.len());
        assert_eq!(resp.extra_num("shard_id"), Some(0.0));
    }
}
