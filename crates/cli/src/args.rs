//! A small argument parser for the `mqce` binary.
//!
//! The workspace deliberately restricts itself to a handful of offline
//! dependencies, so instead of `clap` the CLI uses this minimal parser:
//! positional arguments in order, `--flag value` options (also accepted as
//! `--flag=value`), and boolean `--flag` switches. It is enough for the six
//! sub-commands and keeps the error messages precise.

use std::collections::BTreeMap;

/// Parsed command line: positional arguments plus `--key value` options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// Positional arguments, in order of appearance.
    pub positional: Vec<String>,
    /// Option values keyed by their (lowercased, `--`-stripped) name. Boolean
    /// switches are stored with an empty value.
    pub options: BTreeMap<String, String>,
}

/// Argument-parsing and validation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// An option was given without the required value.
    MissingValue(String),
    /// An option appeared twice.
    Duplicate(String),
    /// An option is not recognised by the sub-command.
    Unknown(String),
    /// A value could not be parsed (option name, value, expected type).
    BadValue {
        /// Option name.
        option: String,
        /// The provided value.
        value: String,
        /// What was expected, e.g. "a number in [0.5, 1]".
        expected: &'static str,
    },
    /// A required positional argument is missing.
    MissingPositional(&'static str),
    /// Too many positional arguments were given.
    ExtraPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(opt) => write!(f, "option --{opt} needs a value"),
            ArgError::Duplicate(opt) => write!(f, "option --{opt} was given twice"),
            ArgError::Unknown(opt) => write!(f, "unknown option --{opt}"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => {
                write!(f, "option --{option}: {value:?} is not {expected}")
            }
            ArgError::MissingPositional(name) => write!(f, "missing required argument <{name}>"),
            ArgError::ExtraPositional(arg) => write!(f, "unexpected argument {arg:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Switch-style options (no value) recognised anywhere.
const SWITCHES: &[&str] = &[
    "print-sets",
    "verify",
    "quiet",
    "no-cache",
    "sets",
    "shutdown",
    "fault-injection",
];

/// Parses raw arguments into positionals and options.
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut parsed = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(stripped) = arg.strip_prefix("--") {
            let (name, inline_value) = match stripped.split_once('=') {
                Some((n, v)) => (n.to_ascii_lowercase(), Some(v.to_string())),
                None => (stripped.to_ascii_lowercase(), None),
            };
            // A bare `--` would otherwise register an empty-named option and
            // swallow the next token as its value, surfacing much later as a
            // baffling "unknown option --"; reject it at the point of use.
            if name.is_empty() && inline_value.is_none() {
                return Err(ArgError::Unknown(name));
            }
            let value = if let Some(v) = inline_value {
                v
            } else if SWITCHES.contains(&name.as_str()) {
                String::new()
            } else {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap().clone(),
                    _ => return Err(ArgError::MissingValue(name)),
                }
            };
            if parsed.options.insert(name.clone(), value).is_some() {
                return Err(ArgError::Duplicate(name));
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// Rejects any option not in `allowed`.
    pub fn restrict_options(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        Ok(())
    }

    /// Required positional argument at `index`, named `name` in errors.
    pub fn positional(&self, index: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// Errors if more than `max` positional arguments were supplied.
    pub fn no_extra_positionals(&self, max: usize) -> Result<(), ArgError> {
        if self.positional.len() > max {
            return Err(ArgError::ExtraPositional(self.positional[max].clone()));
        }
        Ok(())
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// String-valued option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// `f64` option with a default.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: raw.to_string(),
                expected: "a real number",
            }),
        }
    }

    /// `usize` option with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// `u64` option with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// Comma-separated list of vertex ids.
    pub fn get_vertex_list(&self, name: &str) -> Result<Vec<u32>, ArgError> {
        let raw = match self.get(name) {
            None => return Ok(Vec::new()),
            Some(raw) => raw,
        };
        raw.split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| {
                t.trim().parse().map_err(|_| ArgError::BadValue {
                    option: name.to_string(),
                    value: raw.to_string(),
                    expected: "a comma-separated list of vertex ids",
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_options() {
        let p = parse(&argv(&[
            "enumerate",
            "graph.txt",
            "--gamma",
            "0.9",
            "--theta=5",
        ]))
        .unwrap();
        assert_eq!(p.positional, vec!["enumerate", "graph.txt"]);
        assert_eq!(p.get("gamma"), Some("0.9"));
        assert_eq!(p.get("theta"), Some("5"));
        assert_eq!(p.get_f64("gamma", 0.5).unwrap(), 0.9);
        assert_eq!(p.get_usize("theta", 1).unwrap(), 5);
        assert_eq!(p.get_usize("absent", 7).unwrap(), 7);
    }

    #[test]
    fn switches_do_not_consume_values() {
        let p = parse(&argv(&[
            "enumerate",
            "g.txt",
            "--print-sets",
            "--gamma",
            "0.8",
        ]))
        .unwrap();
        assert!(p.switch("print-sets"));
        assert_eq!(p.get_f64("gamma", 0.5).unwrap(), 0.8);
        assert!(!p.switch("verify"));
    }

    #[test]
    fn missing_value_and_duplicates_error() {
        assert_eq!(
            parse(&argv(&["x", "--gamma"])).unwrap_err(),
            ArgError::MissingValue("gamma".into())
        );
        assert_eq!(
            parse(&argv(&["x", "--gamma", "0.5", "--gamma", "0.6"])).unwrap_err(),
            ArgError::Duplicate("gamma".into())
        );
        // `--gamma --theta 3` is also a missing value, not a value of "--theta".
        assert!(parse(&argv(&["x", "--gamma", "--theta", "3"])).is_err());
    }

    #[test]
    fn missing_value_is_attributed_to_the_right_option() {
        // A value-taking flag immediately followed by another `--flag` must
        // report MissingValue for the *first* flag — not consume `--theta` as
        // the value of `--gamma` or blame the next token.
        assert_eq!(
            parse(&argv(&["x", "--gamma", "--theta", "8"])).unwrap_err(),
            ArgError::MissingValue("gamma".into())
        );
        // Trailing value-taking flag at end of argv: same attribution.
        assert_eq!(
            parse(&argv(&["x", "--theta", "8", "--gamma"])).unwrap_err(),
            ArgError::MissingValue("gamma".into())
        );
        // Switches in the middle do not change the attribution.
        assert_eq!(
            parse(&argv(&["x", "--gamma", "--print-sets"])).unwrap_err(),
            ArgError::MissingValue("gamma".into())
        );
        // `--gamma=` (inline empty value) is an empty value, not an error at
        // parse time, and negative lookahead values are still consumed.
        let p = parse(&argv(&["x", "--offset", "-3"])).unwrap();
        assert_eq!(p.get("offset"), Some("-3"));
    }

    #[test]
    fn bare_double_dash_is_rejected() {
        // A lone `--` used to register an empty-named option and swallow the
        // following token; now it errors immediately.
        assert_eq!(
            parse(&argv(&["x", "--", "foo"])).unwrap_err(),
            ArgError::Unknown("".into())
        );
        assert_eq!(
            parse(&argv(&["x", "--"])).unwrap_err(),
            ArgError::Unknown("".into())
        );
    }

    #[test]
    fn bad_values_are_reported() {
        let p = parse(&argv(&["x", "--gamma", "abc", "--theta", "-3"])).unwrap();
        assert!(matches!(
            p.get_f64("gamma", 0.5),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            p.get_usize("theta", 1),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn vertex_lists() {
        let p = parse(&argv(&["x", "--vertices", "3, 5,8"])).unwrap();
        assert_eq!(p.get_vertex_list("vertices").unwrap(), vec![3, 5, 8]);
        assert!(p.get_vertex_list("absent").unwrap().is_empty());
        let bad = parse(&argv(&["x", "--vertices", "3,foo"])).unwrap();
        assert!(bad.get_vertex_list("vertices").is_err());
    }

    #[test]
    fn restriction_and_positional_checks() {
        let p = parse(&argv(&["stats", "a.txt", "b.txt", "--weird", "1"])).unwrap();
        assert!(p.restrict_options(&["gamma"]).is_err());
        assert!(p.restrict_options(&["weird"]).is_ok());
        assert_eq!(p.positional(0, "command").unwrap(), "stats");
        assert!(matches!(
            p.positional(5, "x"),
            Err(ArgError::MissingPositional("x"))
        ));
        assert!(p.no_extra_positionals(2).is_err());
        assert!(p.no_extra_positionals(3).is_ok());
    }

    #[test]
    fn error_display() {
        assert!(ArgError::Unknown("foo".into())
            .to_string()
            .contains("--foo"));
        assert!(ArgError::MissingPositional("input")
            .to_string()
            .contains("<input>"));
        let bad = ArgError::BadValue {
            option: "gamma".into(),
            value: "x".into(),
            expected: "a real number",
        };
        assert!(bad.to_string().contains("gamma"));
    }
}
