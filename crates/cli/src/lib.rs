//! Implementation of the `mqce` command-line tool.
//!
//! The binary is a thin wrapper around [`run`], which parses the sub-command,
//! loads the graph, calls into `mqce-core`, and writes a plain-text report to
//! the supplied writer (so the integration tests can capture it).
//!
//! Sub-commands:
//!
//! * `stats <graph>` — dataset statistics (the columns of Table 1).
//! * `enumerate <graph> --gamma γ --theta θ [...]` — run the MQCE pipeline.
//! * `topk <graph> --gamma γ --k k` — the k largest maximal quasi-cliques.
//! * `query <graph> --gamma γ --theta θ --vertices a,b,c` — MQCs containing
//!   the given vertices.
//! * `generate <kind> <output> [...]` — write a synthetic benchmark graph.
//! * `convert <input> <output>` — convert between edge-list / DIMACS / METIS.
//! * `serve <graph> [...]` — resident daemon: load the graph once, answer
//!   newline-delimited JSON requests over TCP or a Unix socket, with a
//!   result cache and admission control (see [`serve`]).
//! * `client [...]` — send requests to a running daemon.
//! * `shard-worker` — coordinator-spawned worker process for multi-process
//!   sharded enumeration (`enumerate --shards N`); see [`shard`].
//! * `help` — usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod protocol;
pub mod serve;
pub mod shard;

use std::io::Write;
use std::path::Path;
use std::time::Duration;

use mqce_core::prelude::*;
use mqce_core::query::find_mqcs_containing;
use mqce_core::verify::verify_mqc_set;
use mqce_core::{find_largest_mqcs, AdjacencyBackend, Algorithm, BranchingStrategy, S2Backend};
use mqce_graph::{formats, generators, Graph, GraphStats};

use args::{parse, ArgError, ParsedArgs};

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// The sub-command is not recognised.
    UnknownCommand(String),
    /// A graph file could not be read or written.
    Io(String),
    /// Invalid problem parameters.
    Params(String),
    /// Anything else (query errors, verification failures, …).
    Other(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(cmd) => {
                write!(f, "unknown command {cmd:?}; run `mqce help` for usage")
            }
            CliError::Io(msg) | CliError::Params(msg) | CliError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Usage text printed by `mqce help`.
pub const USAGE: &str = "\
mqce — maximal quasi-clique enumeration (FastQC / DCFastQC, SIGMOD'24)

USAGE:
  mqce stats <graph>
  mqce enumerate <graph> --gamma G --theta T [--algorithm A] [--branching B]
                 [--max-round N] [--threads N] [--steal-granularity N]
                 [--backend K] [--s2-backend F] [--s2-model PATH]
                 [--time-limit-secs S] [--print-sets] [--verify]
                 [--shards N [--fault-injection [--fault MODE]]]
  mqce topk <graph> --gamma G [--k K]
  mqce query <graph> --gamma G --theta T --vertices V1,V2,...
  mqce generate <kind> <output> [--n N] [--density D] [--seed S]
                [--communities C] [--p-intra P] [--cave-size K] [--avg-degree A]
  mqce convert <input> <output>
  mqce serve <graph> [--addr HOST:PORT] [--socket PATH] [--max-inflight N]
             [--cache-capacity N] [--bench-log PATH] [--wal PATH]
             [--fault-injection] [--quiet]
  mqce client [--addr HOST:PORT] [--socket PATH] [--retry-secs S]
              [--requests FILE] [--cmd C --gamma G --theta T ...]
              [--fault MODE] [--shutdown]
  mqce shard-worker [--fault-injection]
  mqce help

GRAPH FILES: format chosen by extension — .clq/.dimacs/.col (DIMACS),
  .graph/.metis (METIS), anything else is a whitespace edge list.

ALGORITHMS (--algorithm): dcfastqc (default), fastqc, bdcfastqc, quickplus,
  quickplus-raw, naive.
BRANCHING (--branching): hybrid (default), sym, se.
BACKEND (--backend): auto (default; bitset kernel on dense subproblems),
  slice (CSR binary search only), bitset (force the kernel when it fits).
S2 BACKEND (--s2-backend): auto (default; picks from the observed stream),
  inverted (inverted-index filter), bitset (word-parallel bitmap probes),
  extremal (full Bayardo-Panda extremal sets). See the README section on S2
  maximality backends.
S2 MODEL (--s2-model): path to a fitted cost-model table for the auto
  dispatcher (the format `experiments s2-calibrate --emit` writes); defaults
  to the calibrated table checked in with the settrie crate.
THREADS (--threads): worker count for the DC subproblems; 0 auto-detects
  the available parallelism of the machine. Default 1 (sequential). Workers
  run a work-stealing scheduler; busy searchers split untaken branches off
  to idle workers (see the README section on parallel execution).
STEAL GRANULARITY (--steal-granularity): minimum number of untaken sibling
  branches a searcher donates per split (default 2); 0 disables
  intra-subproblem splitting (whole subproblems are still stolen).
GENERATOR KINDS: er, ba, community, caveman, powerlaw, grid, hub.
SERVE: the daemon loads the graph (plus degeneracy ordering and, when it
  fits, the adjacency bit matrix) once and answers newline-delimited JSON
  requests — {\"cmd\":\"enumerate\"|\"query\"|\"topk\"|\"ping\"|\"shutdown\", ...} with
  per-request gamma/theta/k/vertices/algorithm/threads/deadline_ms knobs.
  Complete answers land in an LRU result cache; at most --max-inflight
  enumerations run at once; a spent deadline_ms budget returns immediately
  with best_effort=true. `mqce client` drives a running daemon and exits
  non-zero if any response reports ok=false; idempotent reads (ping,
  enumerate, query, topk) are retried once on a transient connection reset.
  A worker panic is contained to its DC subproblem (the response reports
  contained_panics and is flagged best-effort); a handler panic becomes an
  ok=false internal-error response on the same connection. With --wal PATH
  every update is appended to a checksummed write-ahead log (fsync'd before
  it is applied; the response reports the wal_offset watermark) and replayed
  on startup, so a crashed daemon restarts to its exact pre-crash graph.
  --fault-injection enables the debug-only per-request fault field
  (panic | panic-locked | panic-worker:<v>) used by the containment tests.
SHARDS (--shards): multi-process sharded enumeration. The coordinator
  partitions the degeneracy-ordered anchor list into N cost-balanced shards,
  ships each shard's two-hop-closed graph slice to a `mqce shard-worker`
  process over the newline-JSON protocol (version-handshaken via ping), and
  merges the returned per-shard families through one maximality engine
  restricted to the cross-shard frontier — the result is byte-identical to a
  single-process run. A worker lost mid-shard is respawned and its shard
  retried once; a second loss degrades the run to best-effort instead of
  hanging. --threads sets the worker-side thread count per shard. With
  --fault-injection, --fault die:<shard> kills that shard's worker mid-run
  (and its retry) and --fault panic:<anchor> panics one DC subproblem
  (contained by the worker; the run is flagged best-effort).
";

/// Entry point: parses `args` and writes the report to `out`.
pub fn run<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    if args.is_empty() {
        writeln!(out, "{USAGE}").map_err(io_err)?;
        return Ok(());
    }
    let parsed = parse(args)?;
    let command = parsed.positional(0, "command")?.to_ascii_lowercase();
    match command.as_str() {
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        "stats" => cmd_stats(&parsed, out),
        "enumerate" => cmd_enumerate(&parsed, out),
        "topk" => cmd_topk(&parsed, out),
        "query" => cmd_query(&parsed, out),
        "generate" => cmd_generate(&parsed, out),
        "convert" => cmd_convert(&parsed, out),
        "serve" => serve::cmd_serve(&parsed, out),
        "client" => serve::cmd_client(&parsed, out),
        "shard-worker" => shard::cmd_shard_worker(&parsed, out),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn io_err(e: std::io::Error) -> CliError {
    CliError::Io(e.to_string())
}

/// Loads a graph, choosing the parser by file extension.
pub fn load_graph(path: &str) -> Result<Graph, CliError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    match ext.as_str() {
        "clq" | "dimacs" | "col" => formats::load_dimacs(path)
            .map_err(|e| CliError::Io(format!("cannot read DIMACS file {path}: {e}"))),
        "graph" | "metis" => formats::load_metis(path)
            .map_err(|e| CliError::Io(format!("cannot read METIS file {path}: {e}"))),
        _ => mqce_graph::edge_list::load_edge_list(path)
            .map(|loaded| loaded.graph)
            .map_err(|e| CliError::Io(format!("cannot read edge list {path}: {e}"))),
    }
}

/// Saves a graph, choosing the writer by file extension.
pub fn save_graph(g: &Graph, path: &str) -> Result<(), CliError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase();
    let result = match ext.as_str() {
        "clq" | "dimacs" | "col" => formats::save_dimacs(g, path),
        "graph" | "metis" => formats::save_metis(g, path),
        _ => mqce_graph::edge_list::save_edge_list(g, path),
    };
    result.map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))
}

fn parse_algorithm(raw: Option<&str>) -> Result<Algorithm, CliError> {
    match raw.unwrap_or("dcfastqc").to_ascii_lowercase().as_str() {
        "dcfastqc" | "dc" => Ok(Algorithm::DcFastQc),
        "fastqc" => Ok(Algorithm::FastQc),
        "bdcfastqc" | "basic-dc" => Ok(Algorithm::BasicDcFastQc),
        "quickplus" | "quick+" => Ok(Algorithm::QuickPlus),
        "quickplus-raw" | "quick+raw" => Ok(Algorithm::QuickPlusRaw),
        "naive" => Ok(Algorithm::Naive),
        other => Err(CliError::Params(format!("unknown algorithm {other:?}"))),
    }
}

fn parse_branching(raw: Option<&str>) -> Result<BranchingStrategy, CliError> {
    match raw.unwrap_or("hybrid").to_ascii_lowercase().as_str() {
        "hybrid" | "hybrid-se" => Ok(BranchingStrategy::HybridSe),
        "sym" | "sym-se" => Ok(BranchingStrategy::SymSe),
        "se" => Ok(BranchingStrategy::Se),
        other => Err(CliError::Params(format!(
            "unknown branching strategy {other:?}"
        ))),
    }
}

fn parse_backend(raw: Option<&str>) -> Result<AdjacencyBackend, CliError> {
    match raw.unwrap_or("auto").to_ascii_lowercase().as_str() {
        "auto" => Ok(AdjacencyBackend::Auto),
        "slice" | "csr" => Ok(AdjacencyBackend::Slice),
        "bitset" | "bitmatrix" => Ok(AdjacencyBackend::Bitset),
        other => Err(CliError::Params(format!(
            "unknown adjacency backend {other:?}"
        ))),
    }
}

fn parse_s2_backend(raw: Option<&str>) -> Result<S2Backend, CliError> {
    match raw.unwrap_or("auto").to_ascii_lowercase().as_str() {
        "auto" => Ok(S2Backend::Auto),
        "inverted" | "inverted-index" => Ok(S2Backend::Inverted),
        "bitset" | "bitmap" => Ok(S2Backend::Bitset),
        "extremal" | "bayardo-panda" => Ok(S2Backend::Extremal),
        other => Err(CliError::Params(format!("unknown S2 backend {other:?}"))),
    }
}

/// Resolves the `--threads` value: `0` means "use every core the OS reports".
fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

fn build_config(parsed: &ParsedArgs) -> Result<MqceConfig, CliError> {
    let gamma = parsed.get_f64("gamma", 0.9)?;
    let theta = parsed.get_usize("theta", 2)?;
    let mut config = MqceConfig::new(gamma, theta)
        .map_err(|e| CliError::Params(e.to_string()))?
        .with_algorithm(parse_algorithm(parsed.get("algorithm"))?)
        .with_branching(parse_branching(parsed.get("branching"))?)
        .with_backend(parse_backend(parsed.get("backend"))?)
        .with_s2_backend(parse_s2_backend(parsed.get("s2-backend"))?)
        .with_max_round(parsed.get_usize("max-round", 2)?);
    if let Some(path) = parsed.get("s2-model") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read S2 cost model {path}: {e}")))?;
        let model = mqce_core::S2CostModel::from_table_str(&text)
            .map_err(|e| CliError::Params(format!("invalid S2 cost model {path}: {e}")))?;
        config = config.with_s2_model(model);
    }
    if let Some(raw) = parsed.get("steal-granularity") {
        let granularity = raw.parse().map_err(|_| {
            CliError::Args(args::ArgError::BadValue {
                option: "steal-granularity".to_string(),
                value: raw.to_string(),
                expected: "a non-negative integer",
            })
        })?;
        config = config.with_steal_granularity(granularity);
    }
    // Presence, not value, decides whether a limit is set: an explicit
    // `--time-limit-secs 0` means "no budget at all" and must produce an
    // immediate, best-effort-flagged return rather than being ignored.
    if parsed.get("time-limit-secs").is_some() {
        let limit = parsed.get_u64("time-limit-secs", 0)?;
        config = config.with_time_limit(Duration::from_secs(limit));
    }
    Ok(config)
}

fn cmd_stats<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[])?;
    parsed.no_extra_positionals(2)?;
    let path = parsed.positional(1, "graph")?;
    let g = load_graph(path)?;
    let stats = GraphStats::compute(&g);
    writeln!(out, "graph            {path}").map_err(io_err)?;
    writeln!(out, "vertices         {}", stats.num_vertices).map_err(io_err)?;
    writeln!(out, "edges            {}", stats.num_edges).map_err(io_err)?;
    writeln!(out, "edge density     {:.3}", stats.edge_density).map_err(io_err)?;
    writeln!(out, "max degree       {}", stats.max_degree).map_err(io_err)?;
    writeln!(out, "degeneracy       {}", stats.degeneracy).map_err(io_err)?;
    writeln!(
        out,
        "triangles        {}",
        mqce_graph::stats::triangle_count(&g)
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "clustering coeff {:.4}",
        mqce_graph::stats::global_clustering_coefficient(&g)
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_enumerate<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[
        "gamma",
        "theta",
        "algorithm",
        "branching",
        "backend",
        "s2-backend",
        "s2-model",
        "max-round",
        "threads",
        "steal-granularity",
        "time-limit-secs",
        "print-sets",
        "verify",
        "shards",
        "fault",
        "fault-injection",
    ])?;
    parsed.no_extra_positionals(2)?;
    let path = parsed.positional(1, "graph")?;
    let g = load_graph(path)?;
    let config = build_config(parsed)?;
    if parsed.get("shards").is_some() {
        return cmd_enumerate_sharded(parsed, &g, &config, out);
    }
    for flag in ["fault", "fault-injection"] {
        if parsed.get(flag).is_some() {
            return Err(CliError::Params(format!(
                "--{flag} is only meaningful with --shards"
            )));
        }
    }
    let threads = resolve_threads(parsed.get_usize("threads", 1)?);
    let result = Session::open(g.clone())
        .config(config)
        .threads(threads)
        .run();
    writeln!(out, "algorithm        {}", config.algorithm.name()).map_err(io_err)?;
    writeln!(
        out,
        "parameters       gamma={} theta={}",
        config.params.gamma, config.params.theta
    )
    .map_err(io_err)?;
    writeln!(out, "qcs (S1 output)  {}", result.qcs.len()).map_err(io_err)?;
    writeln!(out, "maximal qcs      {}", result.mqcs.len()).map_err(io_err)?;
    writeln!(out, "s2 engine        {}", result.s2).map_err(io_err)?;
    if let Some((min, max, avg)) = result.mqc_size_stats() {
        writeln!(out, "mqc sizes        min={min} max={max} avg={avg:.2}").map_err(io_err)?;
    }
    writeln!(out, "branches         {}", result.stats.branches).map_err(io_err)?;
    writeln!(
        out,
        "time             s1={:.3}s s2={:.3}s",
        result.s1_time.as_secs_f64(),
        result.s2_time.as_secs_f64()
    )
    .map_err(io_err)?;
    for t in &result.thread_stats {
        writeln!(
            out,
            "thread {:<3}       busy={:.1}ms idle={:.1}ms ({:.0}% busy) subproblems={} splits={} steals={}",
            t.thread,
            t.busy_millis,
            t.idle_millis,
            100.0 * t.busy_fraction(),
            t.subproblems,
            t.splits,
            t.steals
        )
        .map_err(io_err)?;
    }
    if result.timed_out() {
        writeln!(
            out,
            "WARNING          time limit hit; output may be incomplete"
        )
        .map_err(io_err)?;
    }
    if result.s2_timed_out() {
        writeln!(
            out,
            "WARNING          S2 deadline hit; MQC list is a sound partial antichain"
        )
        .map_err(io_err)?;
    }
    if parsed.switch("verify") {
        let report = verify_mqc_set(&g, &result.mqcs, config.params);
        writeln!(out, "verification     {report}").map_err(io_err)?;
        if !report.is_ok() {
            return Err(CliError::Other(format!("verification failed: {report}")));
        }
    }
    if parsed.switch("print-sets") {
        for mqc in &result.mqcs {
            let formatted: Vec<String> = mqc.iter().map(|v| v.to_string()).collect();
            writeln!(out, "{}", formatted.join(" ")).map_err(io_err)?;
        }
    }
    Ok(())
}

/// The `enumerate --shards N` path: builds the worker request template from
/// the protocol-expressible flags and hands off to the multi-process
/// coordinator in [`shard`].
fn cmd_enumerate_sharded<W: Write>(
    parsed: &ParsedArgs,
    g: &Graph,
    config: &MqceConfig,
    out: &mut W,
) -> Result<(), CliError> {
    let shards = parsed.get_usize("shards", 3)?;
    if shards == 0 {
        return Err(CliError::Params("--shards must be at least 1".to_string()));
    }
    // These knobs have no field in the worker protocol; silently dropping
    // them would make the sharded run diverge from what was asked for.
    for flag in ["s2-model", "max-round", "steal-granularity"] {
        if parsed.get(flag).is_some() {
            return Err(CliError::Params(format!(
                "--{flag} is not supported with --shards (not expressible in the worker protocol)"
            )));
        }
    }
    let template = protocol::Request {
        gamma: config.params.gamma,
        theta: config.params.theta,
        algorithm: parsed.get("algorithm").map(str::to_string),
        branching: parsed.get("branching").map(str::to_string),
        backend: parsed.get("backend").map(str::to_string),
        s2_backend: parsed.get("s2-backend").map(str::to_string),
        threads: parsed.get_usize("threads", 1)?,
        deadline_ms: match parsed.get("time-limit-secs") {
            Some(_) => Some(parsed.get_u64("time-limit-secs", 0)?.saturating_mul(1000)),
            None => None,
        },
        ..protocol::Request::default()
    };
    shard::run_coordinator(
        g,
        config,
        &template,
        shards,
        parsed.get("fault"),
        parsed.switch("fault-injection"),
        parsed.switch("print-sets"),
        parsed.switch("verify"),
        out,
    )
}

fn cmd_topk<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&["gamma", "k", "print-sets"])?;
    parsed.no_extra_positionals(2)?;
    let path = parsed.positional(1, "graph")?;
    let g = load_graph(path)?;
    let gamma = parsed.get_f64("gamma", 0.9)?;
    let k = parsed.get_usize("k", 10)?;
    let top = find_largest_mqcs(&g, gamma, k, None).map_err(|e| CliError::Params(e.to_string()))?;
    writeln!(out, "requested k      {k}").map_err(io_err)?;
    writeln!(out, "found            {}", top.mqcs.len()).map_err(io_err)?;
    writeln!(out, "final theta      {}", top.final_theta).map_err(io_err)?;
    writeln!(out, "rounds           {}", top.rounds).map_err(io_err)?;
    for (i, mqc) in top.mqcs.iter().enumerate() {
        if parsed.switch("print-sets") {
            let formatted: Vec<String> = mqc.iter().map(|v| v.to_string()).collect();
            writeln!(
                out,
                "#{:<3} size={:<4} {}",
                i + 1,
                mqc.len(),
                formatted.join(" ")
            )
            .map_err(io_err)?;
        } else {
            writeln!(out, "#{:<3} size={}", i + 1, mqc.len()).map_err(io_err)?;
        }
    }
    Ok(())
}

fn cmd_query<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[
        "gamma",
        "theta",
        "vertices",
        "branching",
        "backend",
        "s2-backend",
        "s2-model",
        "time-limit-secs",
        "print-sets",
    ])?;
    parsed.no_extra_positionals(2)?;
    let path = parsed.positional(1, "graph")?;
    let g = load_graph(path)?;
    let config = build_config(parsed)?;
    let query = parsed.get_vertex_list("vertices")?;
    if query.is_empty() {
        return Err(CliError::Params(
            "--vertices must list at least one vertex".to_string(),
        ));
    }
    let result =
        find_mqcs_containing(&g, &query, &config).map_err(|e| CliError::Other(e.to_string()))?;
    writeln!(out, "query vertices   {query:?}").map_err(io_err)?;
    writeln!(out, "search universe  {} vertices", result.universe_size).map_err(io_err)?;
    writeln!(out, "maximal qcs      {}", result.mqcs.len()).map_err(io_err)?;
    writeln!(out, "time             {:.3}s", result.elapsed.as_secs_f64()).map_err(io_err)?;
    if result.s2_timed_out {
        writeln!(
            out,
            "WARNING          S2 deadline hit; MQC list is a sound partial antichain"
        )
        .map_err(io_err)?;
    }
    if parsed.switch("print-sets") {
        for mqc in &result.mqcs {
            let formatted: Vec<String> = mqc.iter().map(|v| v.to_string()).collect();
            writeln!(out, "{}", formatted.join(" ")).map_err(io_err)?;
        }
    }
    Ok(())
}

fn cmd_generate<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[
        "n",
        "density",
        "seed",
        "communities",
        "p-intra",
        "inter-degree",
        "cave-size",
        "p-rewire",
        "avg-degree",
        "beta",
        "m-attach",
        "rows",
        "cols",
        "hubs",
        "hub-bias",
        "edges",
    ])?;
    parsed.no_extra_positionals(3)?;
    let kind = parsed.positional(1, "kind")?.to_ascii_lowercase();
    let output = parsed.positional(2, "output")?;
    let n = parsed.get_usize("n", 1000)?;
    let seed = parsed.get_u64("seed", 1)?;
    let g = match kind.as_str() {
        "er" => generators::erdos_renyi_density(n, parsed.get_f64("density", 10.0)?, seed),
        "ba" => generators::barabasi_albert(n, parsed.get_usize("m-attach", 3)?, seed),
        "community" => generators::community_graph(
            generators::CommunityGraphParams {
                n,
                num_communities: parsed.get_usize("communities", 10)?,
                p_intra: parsed.get_f64("p-intra", 0.8)?,
                inter_degree: parsed.get_f64("inter-degree", 1.0)?,
            },
            seed,
        ),
        "caveman" => generators::relaxed_caveman(
            parsed.get_usize("communities", 10)?,
            parsed.get_usize("cave-size", 10)?,
            parsed.get_f64("p-rewire", 0.1)?,
            seed,
        ),
        "powerlaw" => generators::chung_lu_power_law(
            n,
            parsed.get_f64("avg-degree", 8.0)?,
            parsed.get_f64("beta", 2.5)?,
            seed,
        ),
        "grid" => generators::grid(
            parsed.get_usize("rows", 100)?,
            parsed.get_usize("cols", 100)?,
        ),
        "hub" => generators::hub_graph(
            n,
            parsed.get_usize("edges", 4 * n)?,
            parsed.get_usize("hubs", 5)?,
            parsed.get_f64("hub-bias", 0.5)?,
            seed,
        ),
        other => {
            return Err(CliError::Params(format!(
                "unknown generator kind {other:?}"
            )))
        }
    };
    save_graph(&g, output)?;
    writeln!(
        out,
        "wrote {} ({} vertices, {} edges)",
        output,
        g.num_vertices(),
        g.num_edges()
    )
    .map_err(io_err)?;
    Ok(())
}

fn cmd_convert<W: Write>(parsed: &ParsedArgs, out: &mut W) -> Result<(), CliError> {
    parsed.restrict_options(&[])?;
    parsed.no_extra_positionals(3)?;
    let input = parsed.positional(1, "input")?;
    let output = parsed.positional(2, "output")?;
    let g = load_graph(input)?;
    save_graph(&g, output)?;
    writeln!(
        out,
        "converted {input} -> {output} ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    )
    .map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn run_capture(parts: &[&str]) -> Result<String, CliError> {
        let mut buf = Vec::new();
        run(&argv(parts), &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("mqce_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn write_paper_graph(name: &str) -> String {
        let path = temp_path(name);
        save_graph(&Graph::paper_figure1(), &path).unwrap();
        path
    }

    #[test]
    fn help_and_empty_args() {
        assert!(run_capture(&["help"]).unwrap().contains("USAGE"));
        assert!(run_capture(&[]).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(
            run_capture(&["frobnicate"]).unwrap_err(),
            CliError::UnknownCommand(_)
        ));
    }

    #[test]
    fn stats_reports_table1_columns() {
        let path = write_paper_graph("stats.txt");
        let output = run_capture(&["stats", &path]).unwrap();
        assert!(output.contains("vertices         9"));
        assert!(output.contains("degeneracy"));
        assert!(output.contains("triangles"));
    }

    #[test]
    fn enumerate_with_verification() {
        let path = write_paper_graph("enumerate.txt");
        let output = run_capture(&[
            "enumerate",
            &path,
            "--gamma",
            "0.6",
            "--theta",
            "3",
            "--verify",
            "--print-sets",
        ])
        .unwrap();
        assert!(output.contains("algorithm        DCFastQC"));
        assert!(output.contains("maximal qcs"));
        assert!(output.contains("verification     ok"));
    }

    #[test]
    fn enumerate_rejects_bad_parameters() {
        let path = write_paper_graph("bad_params.txt");
        assert!(run_capture(&["enumerate", &path, "--gamma", "0.2"]).is_err());
        assert!(run_capture(&["enumerate", &path, "--algorithm", "alien"]).is_err());
        assert!(run_capture(&["enumerate", &path, "--branching", "alien"]).is_err());
        assert!(run_capture(&["enumerate", &path, "--bogus-flag", "1"]).is_err());
        assert!(run_capture(&["enumerate"]).is_err());
    }

    #[test]
    fn topk_and_query_commands() {
        let path = write_paper_graph("topk.txt");
        let topk =
            run_capture(&["topk", &path, "--gamma", "0.6", "--k", "2", "--print-sets"]).unwrap();
        assert!(topk.contains("requested k      2"));
        assert!(topk.contains("#1"));
        let query = run_capture(&[
            "query",
            &path,
            "--gamma",
            "0.6",
            "--theta",
            "3",
            "--vertices",
            "0,2",
        ])
        .unwrap();
        assert!(query.contains("query vertices"));
        assert!(query.contains("maximal qcs"));
        assert!(run_capture(&["query", &path, "--gamma", "0.6", "--theta", "3"]).is_err());
    }

    #[test]
    fn generate_and_convert_roundtrip() {
        let edge_path = temp_path("generated.txt");
        let out = run_capture(&[
            "generate",
            "er",
            &edge_path,
            "--n",
            "100",
            "--density",
            "3",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("100 vertices"));
        let dimacs_path = temp_path("generated.clq");
        let converted = run_capture(&["convert", &edge_path, &dimacs_path]).unwrap();
        assert!(converted.contains("converted"));
        let g_orig = load_graph(&edge_path).unwrap();
        let g_conv = load_graph(&dimacs_path).unwrap();
        assert_eq!(g_orig.num_edges(), g_conv.num_edges());
        // METIS roundtrip too.
        let metis_path = temp_path("generated.metis");
        run_capture(&["convert", &edge_path, &metis_path]).unwrap();
        assert_eq!(
            load_graph(&metis_path).unwrap().num_edges(),
            g_orig.num_edges()
        );
    }

    #[test]
    fn generate_rejects_unknown_kind() {
        let path = temp_path("never_written.txt");
        assert!(run_capture(&["generate", "mystery", &path]).is_err());
    }

    #[test]
    fn all_generator_kinds_produce_graphs() {
        for (kind, extra) in [
            ("er", vec!["--n", "50", "--density", "2"]),
            ("ba", vec!["--n", "50", "--m-attach", "2"]),
            ("community", vec!["--n", "60", "--communities", "4"]),
            ("caveman", vec!["--communities", "3", "--cave-size", "5"]),
            ("powerlaw", vec!["--n", "80", "--avg-degree", "4"]),
            ("grid", vec!["--rows", "5", "--cols", "6"]),
            ("hub", vec!["--n", "50", "--edges", "100"]),
        ] {
            let path = temp_path(&format!("gen_{kind}.txt"));
            let mut argv = vec!["generate", kind, path.as_str()];
            argv.extend(extra.iter().copied());
            let out = run_capture(&argv).unwrap();
            assert!(out.contains("wrote"), "{kind}: {out}");
            assert!(load_graph(&path).unwrap().num_vertices() > 0, "{kind}");
        }
    }

    #[test]
    fn parallel_enumerate_matches_sequential_counts() {
        let path = write_paper_graph("parallel.txt");
        let seq = run_capture(&["enumerate", &path, "--gamma", "0.6", "--theta", "3"]).unwrap();
        let par = run_capture(&[
            "enumerate",
            &path,
            "--gamma",
            "0.6",
            "--theta",
            "3",
            "--threads",
            "4",
        ])
        .unwrap();
        let count = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("maximal qcs"))
                .unwrap()
                .to_string()
        };
        assert_eq!(count(&seq), count(&par));
    }

    #[test]
    fn steal_granularity_flag_is_accepted_and_reports_threads() {
        let path = write_paper_graph("steal_gran.txt");
        let seq = run_capture(&["enumerate", &path, "--gamma", "0.6", "--theta", "3"]).unwrap();
        let par = run_capture(&[
            "enumerate",
            &path,
            "--gamma",
            "0.6",
            "--theta",
            "3",
            "--threads",
            "4",
            "--steal-granularity",
            "1",
        ])
        .unwrap();
        let count = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("maximal qcs"))
                .unwrap()
                .to_string()
        };
        assert_eq!(count(&seq), count(&par));
        // The parallel run reports one busy/steal line per worker.
        assert_eq!(par.lines().filter(|l| l.starts_with("thread ")).count(), 4);
        assert!(seq.lines().all(|l| !l.starts_with("thread ")));
        // Bad values are rejected.
        assert!(run_capture(&[
            "enumerate",
            &path,
            "--gamma",
            "0.6",
            "--steal-granularity",
            "soon",
        ])
        .is_err());
    }

    #[test]
    fn threads_zero_auto_detects() {
        // `--threads 0` resolves to the machine's parallelism and still
        // produces the sequential result.
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
        let path = write_paper_graph("threads0.txt");
        let auto = run_capture(&[
            "enumerate",
            &path,
            "--gamma",
            "0.6",
            "--theta",
            "3",
            "--threads",
            "0",
        ])
        .unwrap();
        let seq = run_capture(&["enumerate", &path, "--gamma", "0.6", "--theta", "3"]).unwrap();
        let count = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("maximal qcs"))
                .unwrap()
                .to_string()
        };
        assert_eq!(count(&auto), count(&seq));
    }

    #[test]
    fn s2_backend_flag_is_accepted_and_consistent() {
        let path = write_paper_graph("s2_backend.txt");
        let mut outputs = Vec::new();
        for backend in ["auto", "inverted", "bitset", "extremal"] {
            let out = run_capture(&[
                "enumerate",
                &path,
                "--gamma",
                "0.6",
                "--theta",
                "3",
                "--s2-backend",
                backend,
                "--verify",
                "--print-sets",
            ])
            .unwrap();
            assert!(out.contains("verification     ok"), "{backend}: {out}");
            assert!(
                out.contains("s2 engine        backend="),
                "{backend}: {out}"
            );
            let sets: Vec<&str> = out
                .lines()
                .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
                .collect();
            outputs.push(sets.join("\n"));
        }
        for pair in outputs.windows(2) {
            assert_eq!(pair[0], pair[1], "S2 backends disagree");
        }
        assert!(run_capture(&["enumerate", &path, "--s2-backend", "alien"]).is_err());
    }

    #[test]
    fn s2_model_flag_loads_a_fitted_table() {
        let path = write_paper_graph("s2_model.txt");
        // A custom (here: identity-coefficient) model table round-trips
        // through the flag; the tiny graph falls back below the model's
        // range, so the output is unchanged either way.
        let model_path = temp_path("custom_model.tsv");
        std::fs::write(
            &model_path,
            mqce_core::S2CostModel::checked_in().to_table_string(),
        )
        .unwrap();
        let out = run_capture(&[
            "enumerate",
            &path,
            "--gamma",
            "0.6",
            "--theta",
            "3",
            "--s2-model",
            &model_path,
            "--verify",
        ])
        .unwrap();
        assert!(out.contains("verification     ok"));
        // Missing and malformed tables are rejected with a clear error.
        assert!(matches!(
            run_capture(&["enumerate", &path, "--s2-model", "/nonexistent/model.tsv"]),
            Err(CliError::Io(_))
        ));
        let broken = temp_path("broken_model.tsv");
        std::fs::write(&broken, "inverted 1 2\n").unwrap();
        assert!(matches!(
            run_capture(&["enumerate", &path, "--s2-model", &broken]),
            Err(CliError::Params(_))
        ));
    }

    #[test]
    fn backend_flag_is_accepted_and_consistent() {
        let path = write_paper_graph("backend.txt");
        let mut outputs = Vec::new();
        for backend in ["auto", "slice", "bitset"] {
            let out = run_capture(&[
                "enumerate",
                &path,
                "--gamma",
                "0.6",
                "--theta",
                "3",
                "--backend",
                backend,
                "--verify",
                "--print-sets",
            ])
            .unwrap();
            assert!(out.contains("verification     ok"), "{backend}: {out}");
            // Keep only the reported sets for cross-backend comparison.
            let sets: Vec<&str> = out
                .lines()
                .filter(|l| l.chars().next().is_some_and(|c| c.is_ascii_digit()))
                .collect();
            outputs.push(sets.join("\n"));
        }
        assert_eq!(outputs[0], outputs[1], "auto vs slice outputs differ");
        assert_eq!(outputs[1], outputs[2], "slice vs bitset outputs differ");
        assert!(run_capture(&["enumerate", &path, "--backend", "alien"]).is_err());
    }
}
