//! Wire protocol of the `mqce serve` daemon.
//!
//! The daemon speaks newline-delimited JSON: one request object per line in,
//! one response object per line out, in order. The vendored `serde` derive
//! only handles named-field structs, so both sides of the protocol build and
//! walk [`serde::Value`] trees by hand; this module is the single place that
//! knows the field names.
//!
//! A request selects a command (`enumerate`, `query`, `topk`, `ping`,
//! `update`, `shard_run`, `shutdown`) and may override any of the
//! per-request knobs (γ, θ, k, algorithm, branching, adjacency/S2 backends,
//! worker threads, a relative deadline in milliseconds). `update` carries
//! `insert` / `delete` edge lists (`[[u, v], …]`); `shard_run` carries an
//! encoded [`GraphSlice`](mqce_graph::GraphSlice) plus the shard's anchors
//! and global ranks, and is answered with a `shard_result` set stream (see
//! [`encode_set_stream`]). Responses echo the request `id` and carry the
//! result plus `cached` / `best_effort` / `s2_timed_out` status flags.
//!
//! Peers negotiate compatibility through the `version` field: a client may
//! stamp any request (a `ping` handshake by convention) with the protocol
//! version it speaks, and a daemon or worker that speaks a different version
//! answers with a typed `error_kind:"protocol_version"` failure instead of
//! an unknown-field error, so mixed-version deployments fail loudly and
//! diagnosably.

use serde::Value;

/// The protocol version this build speaks. Bumped on any incompatible wire
/// change; peers reject mismatches during the `ping` handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// One client request, decoded from a JSON line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Opaque id echoed in the response (string or number on the wire).
    pub id: Option<String>,
    /// Command: `enumerate`, `query`, `topk`, `ping`, `update` or
    /// `shutdown`.
    pub cmd: String,
    /// Density threshold γ.
    pub gamma: f64,
    /// Size threshold θ.
    pub theta: usize,
    /// How many largest MQCs to report (`topk` only).
    pub k: usize,
    /// Query vertices (`query` only).
    pub vertices: Vec<u32>,
    /// Edges to insert (`update` only), as `(u, v)` pairs.
    pub insert: Vec<(u32, u32)>,
    /// Edges to delete (`update` only), as `(u, v)` pairs.
    pub delete: Vec<(u32, u32)>,
    /// MQCE-S1 algorithm name (same values as `--algorithm`).
    pub algorithm: Option<String>,
    /// Branching strategy (same values as `--branching`).
    pub branching: Option<String>,
    /// Adjacency backend (same values as `--backend`).
    pub backend: Option<String>,
    /// S2 maximality backend (same values as `--s2-backend`).
    pub s2_backend: Option<String>,
    /// Worker threads for this request (1 = sequential).
    pub threads: usize,
    /// Relative deadline for the whole request, in milliseconds, measured
    /// from the moment the daemon reads the request. Covers queueing time:
    /// a request that spends its whole budget waiting for an enumeration
    /// slot still returns promptly, flagged best-effort.
    pub deadline_ms: Option<u64>,
    /// Bypass the result cache (neither read nor written).
    pub no_cache: bool,
    /// Include the MQC vertex sets in the response, not just the count.
    pub sets: bool,
    /// Debug-only fault injection mode (`panic`, `panic-locked`,
    /// `panic-worker:<v>`; shard workers also honour `die` and
    /// `panic:<anchor>`), used by the fault-containment tests. The daemon
    /// refuses it unless started with `--fault-injection`. Fault requests
    /// bypass the result cache entirely, so the field is not part of
    /// [`Request::cache_key`].
    pub fault: Option<String>,
    /// Protocol version the sender speaks. Stamped on the `ping` handshake;
    /// a peer speaking a different version rejects the request with a typed
    /// `error_kind:"protocol_version"` failure.
    pub version: Option<u32>,
    /// Encoded [`GraphSlice`](mqce_graph::GraphSlice) payload (`shard_run`
    /// only): the self-contained subgraph the shard's subproblems run on.
    pub slice: Option<String>,
    /// The shard's anchors as slice-local ids, in rank order (`shard_run`
    /// only).
    pub anchors: Vec<u32>,
    /// Per slice-local vertex: its global session rank (`shard_run` only).
    /// Ranks are only compared, never indexed, by the DC drivers.
    pub ranks: Vec<usize>,
    /// Which shard this payload is (`shard_run` only), echoed in the result
    /// so the coordinator can match asynchronous replies.
    pub shard_id: usize,
}

impl Default for Request {
    fn default() -> Self {
        Request {
            id: None,
            cmd: "enumerate".to_string(),
            gamma: 0.9,
            theta: 2,
            k: 10,
            vertices: Vec::new(),
            insert: Vec::new(),
            delete: Vec::new(),
            algorithm: None,
            branching: None,
            backend: None,
            s2_backend: None,
            threads: 1,
            deadline_ms: None,
            no_cache: false,
            sets: false,
            fault: None,
            version: None,
            slice: None,
            anchors: Vec::new(),
            ranks: Vec::new(),
            shard_id: 0,
        }
    }
}

/// One daemon response, encoded as a JSON line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Response {
    /// The request id, echoed back.
    pub id: Option<String>,
    /// Whether the request was understood and executed.
    pub ok: bool,
    /// Error message when `ok` is false.
    pub error: Option<String>,
    /// Whether the result came from the daemon's result cache.
    pub cached: bool,
    /// Whether the result is best-effort (deadline cut the work short, or
    /// the request expired while queued for an enumeration slot).
    pub best_effort: bool,
    /// Whether the S2 maximality filter hit its deadline (the MQC list is
    /// then a sound partial antichain).
    pub s2_timed_out: bool,
    /// Wall-clock time the daemon spent on this request, in milliseconds
    /// (near zero for cache hits).
    pub elapsed_ms: f64,
    /// Number of maximal quasi-cliques found.
    pub count: usize,
    /// The MQC vertex sets (present only when the request set `sets`).
    pub mqcs: Option<Vec<Vec<u32>>>,
    /// Extra fields (ping statistics, graph fingerprint, …), carried
    /// verbatim so the protocol can grow without breaking old clients.
    pub extra: Vec<(String, Value)>,
}

/// Wrapper that lets a raw [`Value`] go through `serde_json::to_string`
/// (the vendored `Value` deliberately does not implement `Serialize`).
struct Raw<'a>(&'a Value);

impl serde::Serialize for Raw<'_> {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Renders a value tree as one compact JSON line (no trailing newline).
pub fn value_to_line(value: &Value) -> String {
    serde_json::to_string(&Raw(value)).expect("value rendering is infallible")
}

fn get<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .filter(|v| !matches!(v, Value::Null))
}

fn expect_object(value: &Value) -> Result<&[(String, Value)], String> {
    match value {
        Value::Object(fields) => Ok(fields),
        _ => Err("request must be a JSON object".to_string()),
    }
}

fn as_f64(v: &Value, name: &str) -> Result<f64, String> {
    match v {
        Value::Num(n) => Ok(*n),
        _ => Err(format!("field `{name}` must be a number")),
    }
}

fn as_usize(v: &Value, name: &str) -> Result<usize, String> {
    let n = as_f64(v, name)?;
    if n.fract() != 0.0 || n < 0.0 {
        return Err(format!("field `{name}` must be a non-negative integer"));
    }
    Ok(n as usize)
}

fn as_bool(v: &Value, name: &str) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("field `{name}` must be a boolean")),
    }
}

fn as_str(v: &Value, name: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(format!("field `{name}` must be a string")),
    }
}

/// Request ids may be strings or numbers on the wire; both normalise to a
/// string so the daemon can echo them without tracking the original type.
fn as_id(v: &Value) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Num(n) if n.fract() == 0.0 => Ok(format!("{}", *n as i64)),
        Value::Num(n) => Ok(format!("{n}")),
        _ => Err("field `id` must be a string or number".to_string()),
    }
}

fn as_vertices(v: &Value) -> Result<Vec<u32>, String> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|item| {
                let n = as_f64(item, "vertices")?;
                if n.fract() != 0.0 || n < 0.0 || n > u32::MAX as f64 {
                    return Err("field `vertices` must list vertex ids".to_string());
                }
                Ok(n as u32)
            })
            .collect(),
        _ => Err("field `vertices` must be an array of vertex ids".to_string()),
    }
}

/// Decodes an edge list (`[[u, v], …]`) from a value tree.
fn as_edges(v: &Value, name: &str) -> Result<Vec<(u32, u32)>, String> {
    let Value::Array(items) = v else {
        return Err(format!("field `{name}` must be an array of [u, v] pairs"));
    };
    items
        .iter()
        .map(|item| {
            let pair = as_vertices(item)
                .map_err(|_| format!("field `{name}` must be an array of [u, v] pairs"))?;
            match pair[..] {
                [u, v] => Ok((u, v)),
                _ => Err(format!("field `{name}` entries must be [u, v] pairs")),
            }
        })
        .collect()
}

impl Request {
    /// Decodes a request from one JSON line.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let value = serde_json::parse_value(line).map_err(|e| format!("bad JSON: {e}"))?;
        Request::from_value(&value)
    }

    /// Decodes a request from a value tree. Unknown fields are rejected so a
    /// typo (`"gama"`) fails loudly instead of silently running defaults.
    pub fn from_value(value: &Value) -> Result<Request, String> {
        let fields = expect_object(value)?;
        let mut req = Request::default();
        for (key, v) in fields {
            if matches!(v, Value::Null) {
                continue;
            }
            match key.as_str() {
                "id" => req.id = Some(as_id(v)?),
                "cmd" => req.cmd = as_str(v, "cmd")?.to_ascii_lowercase(),
                "gamma" => req.gamma = as_f64(v, "gamma")?,
                "theta" => req.theta = as_usize(v, "theta")?,
                "k" => req.k = as_usize(v, "k")?,
                "vertices" => req.vertices = as_vertices(v)?,
                "insert" => req.insert = as_edges(v, "insert")?,
                "delete" => req.delete = as_edges(v, "delete")?,
                "algorithm" => req.algorithm = Some(as_str(v, "algorithm")?),
                "branching" => req.branching = Some(as_str(v, "branching")?),
                "backend" => req.backend = Some(as_str(v, "backend")?),
                "s2_backend" => req.s2_backend = Some(as_str(v, "s2_backend")?),
                "threads" => req.threads = as_usize(v, "threads")?,
                "deadline_ms" => req.deadline_ms = Some(as_usize(v, "deadline_ms")? as u64),
                "no_cache" => req.no_cache = as_bool(v, "no_cache")?,
                "sets" => req.sets = as_bool(v, "sets")?,
                "fault" => req.fault = Some(as_str(v, "fault")?),
                "version" => req.version = Some(as_usize(v, "version")? as u32),
                "slice" => req.slice = Some(as_str(v, "slice")?),
                "anchors" => {
                    req.anchors =
                        as_vertices(v).map_err(|_| "field `anchors` must list vertex ids")?
                }
                "ranks" => {
                    let Value::Array(items) = v else {
                        return Err("field `ranks` must be an array of ranks".to_string());
                    };
                    req.ranks = items
                        .iter()
                        .map(|item| as_usize(item, "ranks"))
                        .collect::<Result<_, _>>()?;
                }
                "shard_id" => req.shard_id = as_usize(v, "shard_id")?,
                other => return Err(format!("unknown request field `{other}`")),
            }
        }
        match req.cmd.as_str() {
            "enumerate" | "query" | "topk" | "ping" | "update" | "shard_run" | "shutdown" => {
                Ok(req)
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }

    /// Encodes the request as a value tree (the client side of the wire).
    /// Defaults are omitted, so a minimal request stays minimal on the wire.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        let mut push = |k: &str, v: Value| fields.push((k.to_string(), v));
        if let Some(id) = &self.id {
            push("id", Value::Str(id.clone()));
        }
        push("cmd", Value::Str(self.cmd.clone()));
        push("gamma", Value::Num(self.gamma));
        push("theta", Value::Num(self.theta as f64));
        if self.cmd == "topk" {
            push("k", Value::Num(self.k as f64));
        }
        if !self.vertices.is_empty() {
            push(
                "vertices",
                Value::Array(
                    self.vertices
                        .iter()
                        .map(|&v| Value::Num(v as f64))
                        .collect(),
                ),
            );
        }
        let edges_value = |edges: &[(u32, u32)]| {
            Value::Array(
                edges
                    .iter()
                    .map(|&(u, v)| Value::Array(vec![Value::Num(u as f64), Value::Num(v as f64)]))
                    .collect(),
            )
        };
        if !self.insert.is_empty() {
            push("insert", edges_value(&self.insert));
        }
        if !self.delete.is_empty() {
            push("delete", edges_value(&self.delete));
        }
        for (key, opt) in [
            ("algorithm", &self.algorithm),
            ("branching", &self.branching),
            ("backend", &self.backend),
            ("s2_backend", &self.s2_backend),
        ] {
            if let Some(s) = opt {
                push(key, Value::Str(s.clone()));
            }
        }
        if self.threads != 1 {
            push("threads", Value::Num(self.threads as f64));
        }
        if let Some(ms) = self.deadline_ms {
            push("deadline_ms", Value::Num(ms as f64));
        }
        if self.no_cache {
            push("no_cache", Value::Bool(true));
        }
        if self.sets {
            push("sets", Value::Bool(true));
        }
        if let Some(fault) = &self.fault {
            push("fault", Value::Str(fault.clone()));
        }
        if let Some(version) = self.version {
            push("version", Value::Num(version as f64));
        }
        if let Some(slice) = &self.slice {
            push("slice", Value::Str(slice.clone()));
        }
        if !self.anchors.is_empty() {
            push(
                "anchors",
                Value::Array(self.anchors.iter().map(|&v| Value::Num(v as f64)).collect()),
            );
        }
        if !self.ranks.is_empty() {
            push(
                "ranks",
                Value::Array(self.ranks.iter().map(|&r| Value::Num(r as f64)).collect()),
            );
        }
        if self.cmd == "shard_run" {
            push("shard_id", Value::Num(self.shard_id as f64));
        }
        Value::Object(fields)
    }

    /// Encodes the request as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        value_to_line(&self.to_value())
    }

    /// Canonical cache key: graph fingerprint plus every parameter that can
    /// change the *result*. Presentation and scheduling knobs — `id`,
    /// `sets`, `threads`, `deadline_ms`, `no_cache` — are deliberately
    /// excluded: a cached complete answer is valid for any of them. Query
    /// vertices are sorted and deduplicated (the candidate universe is an
    /// intersection, so order and multiplicity cannot matter).
    pub fn cache_key(&self, fingerprint: u64) -> String {
        let norm = |opt: &Option<String>, default: &str| {
            opt.as_deref().unwrap_or(default).to_ascii_lowercase()
        };
        let mut vertices = self.vertices.clone();
        vertices.sort_unstable();
        vertices.dedup();
        let verts: Vec<String> = vertices.iter().map(|v| v.to_string()).collect();
        format!(
            "{fingerprint:016x}|{cmd}|g={gamma}|t={theta}|k={k}|v={verts}|a={alg}|br={br}|ab={ab}|s2={s2}",
            cmd = self.cmd,
            gamma = self.gamma,
            theta = self.theta,
            k = if self.cmd == "topk" { self.k } else { 0 },
            verts = verts.join(","),
            alg = norm(&self.algorithm, "dcfastqc"),
            br = norm(&self.branching, "hybrid"),
            ab = norm(&self.backend, "auto"),
            s2 = norm(&self.s2_backend, "auto"),
        )
    }
}

/// Flattens a family of vertex sets into the length-prefixed number stream
/// carried by `shard_result` responses: `[len₀, v…, len₁, v…]`. One flat
/// array keeps the vendored value tree shallow for large families.
pub fn encode_set_stream(sets: &[Vec<u32>]) -> Value {
    let mut stream = Vec::with_capacity(sets.iter().map(|s| s.len() + 1).sum());
    for set in sets {
        stream.push(Value::Num(set.len() as f64));
        stream.extend(set.iter().map(|&v| Value::Num(v as f64)));
    }
    Value::Array(stream)
}

/// Decodes a length-prefixed set stream (the inverse of
/// [`encode_set_stream`]), rejecting truncated or malformed payloads.
pub fn decode_set_stream(value: &Value) -> Result<Vec<Vec<u32>>, String> {
    let Value::Array(items) = value else {
        return Err("set stream must be an array".to_string());
    };
    let num = |v: &Value| -> Result<usize, String> {
        match v {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
                Ok(*n as usize)
            }
            _ => Err("set stream entries must be non-negative integers".to_string()),
        }
    };
    let mut sets = Vec::new();
    let mut i = 0;
    while i < items.len() {
        let len = num(&items[i])?;
        i += 1;
        if i + len > items.len() {
            return Err("set stream truncated mid-set".to_string());
        }
        let set = items[i..i + len]
            .iter()
            .map(|v| num(v).map(|x| x as u32))
            .collect::<Result<Vec<u32>, _>>()?;
        i += len;
        sets.push(set);
    }
    Ok(sets)
}

impl Response {
    /// A failed response carrying an error message.
    pub fn failure(id: Option<String>, error: impl Into<String>) -> Response {
        Response {
            id,
            ok: false,
            error: Some(error.into()),
            ..Response::default()
        }
    }

    /// The typed failure a peer answers when the sender's `version` does not
    /// match its own: carries `error_kind:"protocol_version"` plus the
    /// version this build speaks, so the client can report the mismatch
    /// precisely instead of guessing from an unknown-field error.
    pub fn version_mismatch(id: Option<String>, theirs: u32) -> Response {
        let mut response = Response::failure(
            id,
            format!(
                "protocol version mismatch: peer speaks v{theirs}, this build speaks v{PROTOCOL_VERSION}"
            ),
        );
        response.extra.push((
            "error_kind".to_string(),
            Value::Str("protocol_version".to_string()),
        ));
        response.extra.push((
            "protocol_version".to_string(),
            Value::Num(PROTOCOL_VERSION as f64),
        ));
        response
    }

    /// Encodes the response as a value tree.
    pub fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        let mut push = |k: &str, v: Value| fields.push((k.to_string(), v));
        if let Some(id) = &self.id {
            push("id", Value::Str(id.clone()));
        }
        push("ok", Value::Bool(self.ok));
        if let Some(err) = &self.error {
            push("error", Value::Str(err.clone()));
        }
        push("cached", Value::Bool(self.cached));
        push("best_effort", Value::Bool(self.best_effort));
        push("s2_timed_out", Value::Bool(self.s2_timed_out));
        push("elapsed_ms", Value::Num(self.elapsed_ms));
        push("count", Value::Num(self.count as f64));
        if let Some(mqcs) = &self.mqcs {
            push(
                "mqcs",
                Value::Array(
                    mqcs.iter()
                        .map(|set| {
                            Value::Array(set.iter().map(|&v| Value::Num(v as f64)).collect())
                        })
                        .collect(),
                ),
            );
        }
        for (key, v) in &self.extra {
            fields.push((key.clone(), v.clone()));
        }
        Value::Object(fields)
    }

    /// Encodes the response as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        value_to_line(&self.to_value())
    }

    /// Decodes a response from one JSON line (the client side).
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let value = serde_json::parse_value(line).map_err(|e| format!("bad JSON: {e}"))?;
        let fields = expect_object(&value)?;
        let mut resp = Response::default();
        for (key, v) in fields {
            match key.as_str() {
                "id" => resp.id = Some(as_id(v)?),
                "ok" => resp.ok = as_bool(v, "ok")?,
                "error" => resp.error = Some(as_str(v, "error")?),
                "cached" => resp.cached = as_bool(v, "cached")?,
                "best_effort" => resp.best_effort = as_bool(v, "best_effort")?,
                "s2_timed_out" => resp.s2_timed_out = as_bool(v, "s2_timed_out")?,
                "elapsed_ms" => resp.elapsed_ms = as_f64(v, "elapsed_ms")?,
                "count" => resp.count = as_usize(v, "count")?,
                "mqcs" => {
                    let sets = match v {
                        Value::Array(rows) => rows
                            .iter()
                            .map(as_vertices)
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => return Err("field `mqcs` must be an array".to_string()),
                    };
                    resp.mqcs = Some(sets);
                }
                other => resp.extra.push((other.to_string(), v.clone())),
            }
        }
        Ok(resp)
    }

    /// Looks up a numeric field in `extra` (ping statistics).
    pub fn extra_num(&self, name: &str) -> Option<f64> {
        get(&self.extra, name).and_then(|v| match v {
            Value::Num(n) => Some(*n),
            _ => None,
        })
    }

    /// Looks up a string field in `extra` (e.g. the graph fingerprint).
    pub fn extra_str(&self, name: &str) -> Option<&str> {
        get(&self.extra, name).and_then(|v| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = Request {
            id: Some("r1".to_string()),
            cmd: "query".to_string(),
            gamma: 0.8,
            theta: 3,
            vertices: vec![4, 1, 9],
            algorithm: Some("fastqc".to_string()),
            threads: 4,
            deadline_ms: Some(250),
            no_cache: true,
            sets: true,
            fault: Some("panic-worker:3".to_string()),
            ..Request::default()
        };
        let line = req.to_line();
        assert_eq!(Request::parse_line(&line).unwrap(), req);
        // Minimal request: defaults fill in.
        let min = Request::parse_line(r#"{"cmd":"enumerate"}"#).unwrap();
        assert_eq!(min.gamma, 0.9);
        assert_eq!(min.theta, 2);
        assert!(!min.sets);
    }

    #[test]
    fn update_requests_roundtrip() {
        let req = Request {
            id: Some("u1".to_string()),
            cmd: "update".to_string(),
            insert: vec![(1, 2), (3, 4)],
            delete: vec![(5, 6)],
            ..Request::default()
        };
        assert_eq!(Request::parse_line(&req.to_line()).unwrap(), req);
        // Malformed edge lists are rejected loudly.
        assert!(Request::parse_line(r#"{"cmd":"update","insert":[[1]]}"#).is_err());
        assert!(Request::parse_line(r#"{"cmd":"update","insert":[1,2]}"#).is_err());
        assert!(Request::parse_line(r#"{"cmd":"update","delete":[[1,2,3]]}"#).is_err());
    }

    #[test]
    fn numeric_ids_normalise_to_strings() {
        let req = Request::parse_line(r#"{"cmd":"ping","id":7}"#).unwrap();
        assert_eq!(req.id.as_deref(), Some("7"));
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(Request::parse_line("not json").is_err());
        assert!(Request::parse_line(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(Request::parse_line(r#"{"cmd":"enumerate","gama":0.9}"#).is_err());
        assert!(Request::parse_line(r#"{"cmd":"enumerate","theta":-1}"#).is_err());
        assert!(Request::parse_line(r#"{"cmd":"enumerate","vertices":[1.5]}"#).is_err());
        assert!(Request::parse_line(r#"[1,2]"#).is_err());
    }

    #[test]
    fn cache_key_ignores_presentation_and_scheduling_knobs() {
        let base = Request {
            cmd: "enumerate".to_string(),
            gamma: 0.85,
            theta: 4,
            ..Request::default()
        };
        let mut varied = base.clone();
        varied.id = Some("x".to_string());
        varied.sets = true;
        varied.threads = 8;
        varied.deadline_ms = Some(1000);
        varied.fault = Some("panic".to_string());
        assert_eq!(base.cache_key(42), varied.cache_key(42));
        // ... but result-affecting parameters and the graph identity do key.
        let mut other = base.clone();
        other.gamma = 0.9;
        assert_ne!(base.cache_key(42), other.cache_key(42));
        assert_ne!(base.cache_key(42), base.cache_key(43));
        // Explicit defaults normalise to the same key as omitted options.
        let mut explicit = base.clone();
        explicit.algorithm = Some("DCFastQC".to_string());
        explicit.s2_backend = Some("AUTO".to_string());
        assert_eq!(base.cache_key(42), explicit.cache_key(42));
    }

    #[test]
    fn query_vertex_order_does_not_change_the_key() {
        let a = Request {
            cmd: "query".to_string(),
            vertices: vec![3, 1, 2],
            ..Request::default()
        };
        let b = Request {
            cmd: "query".to_string(),
            vertices: vec![2, 3, 1, 1],
            ..Request::default()
        };
        assert_eq!(a.cache_key(7), b.cache_key(7));
    }

    #[test]
    fn response_roundtrips_through_json() {
        let resp = Response {
            id: Some("r1".to_string()),
            ok: true,
            cached: true,
            best_effort: false,
            s2_timed_out: false,
            elapsed_ms: 1.25,
            count: 2,
            mqcs: Some(vec![vec![0, 1, 2], vec![3, 4, 5]]),
            extra: vec![("fingerprint".to_string(), Value::Str("abc".to_string()))],
            ..Response::default()
        };
        let line = resp.to_line();
        let back = Response::parse_line(&line).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.extra_str("fingerprint"), Some("abc"));
        assert_eq!(back.extra_num("fingerprint"), None);
    }

    #[test]
    fn shard_run_requests_roundtrip() {
        let req = Request {
            id: Some("s0".to_string()),
            cmd: "shard_run".to_string(),
            gamma: 0.85,
            theta: 5,
            version: Some(PROTOCOL_VERSION),
            slice: Some("MQSL1 0 0 0 deadbeefdeadbeef".to_string()),
            anchors: vec![0, 2, 5],
            ranks: vec![7, 8, 9, 10],
            shard_id: 2,
            ..Request::default()
        };
        assert_eq!(Request::parse_line(&req.to_line()).unwrap(), req);
        // Bad rank payloads are rejected loudly.
        assert!(Request::parse_line(r#"{"cmd":"shard_run","ranks":[1.5]}"#).is_err());
        assert!(Request::parse_line(r#"{"cmd":"shard_run","ranks":7}"#).is_err());
    }

    #[test]
    fn set_streams_roundtrip_and_reject_truncation() {
        let sets = vec![vec![0u32, 3, 9], vec![], vec![7]];
        let stream = encode_set_stream(&sets);
        assert_eq!(decode_set_stream(&stream).unwrap(), sets);
        assert_eq!(
            decode_set_stream(&encode_set_stream(&[])).unwrap(),
            Vec::<Vec<u32>>::new()
        );
        // A length prefix pointing past the end of the stream is truncation.
        let truncated = Value::Array(vec![Value::Num(3.0), Value::Num(1.0)]);
        assert!(decode_set_stream(&truncated).is_err());
        assert!(decode_set_stream(&Value::Num(1.0)).is_err());
        assert!(decode_set_stream(&Value::Array(vec![Value::Num(-1.0)])).is_err());
    }

    #[test]
    fn version_mismatch_is_typed() {
        let resp = Response::version_mismatch(Some("h".to_string()), 9);
        let back = Response::parse_line(&resp.to_line()).unwrap();
        assert!(!back.ok);
        assert_eq!(back.extra_str("error_kind"), Some("protocol_version"));
        assert_eq!(
            back.extra_num("protocol_version"),
            Some(PROTOCOL_VERSION as f64)
        );
        assert!(back.error.unwrap().contains("v9"));
    }

    #[test]
    fn failure_responses_carry_the_error() {
        let resp = Response::failure(Some("q".to_string()), "boom");
        let back = Response::parse_line(&resp.to_line()).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_deref(), Some("boom"));
        assert_eq!(back.id.as_deref(), Some("q"));
    }
}
