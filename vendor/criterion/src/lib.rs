//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the API surface this workspace's benches use. Behaviour:
//!
//! * under `cargo bench` (the harness receives `--bench`) each benchmark
//!   routine is timed over a single measured pass and one line per benchmark
//!   is printed — enough to compare configurations, with none of real
//!   criterion's statistics;
//! * under `cargo test` (no `--bench` argument) benchmarks are *not*
//!   executed, so test runs stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { bench_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        if self.should_run(&name) {
            let mut bencher = Bencher::new();
            f(&mut bencher);
            bencher.report(&name);
        }
        self
    }

    fn should_run(&self, id: &str) -> bool {
        self.bench_mode
            && self
                .filter
                .as_deref()
                .map(|f| id.contains(f))
                .unwrap_or(true)
    }
}

/// A group of related benchmarks sharing measurement settings.
///
/// The measurement-tuning setters are accepted (so call sites written for
/// real criterion compile) but only `sample_size` influences this stub,
/// and only by being ignored consistently: every benchmark is one pass.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted, unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up time (accepted, unused).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.should_run(&full) {
            let mut bencher = Bencher::new();
            f(&mut bencher, input);
            bencher.report(&full);
        }
        self
    }

    /// Benchmarks `f` without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.should_run(&full) {
            let mut bencher = Bencher::new();
            f(&mut bencher);
            bencher.report(&full);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts strings.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times one pass of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
        self.iterations = 1;
    }

    fn report(&self, id: &str) {
        if self.iterations == 0 {
            println!("{id:<60} (no measurement)");
        } else {
            println!(
                "{id:<60} {:>12.3} ms/iter",
                self.elapsed.as_secs_f64() * 1e3 / self.iterations as f64
            );
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
