//! Offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, serialisation here goes through
//! a concrete JSON-like [`Value`] tree: [`Serialize`] renders into a
//! `Value`, [`Deserialize`] reads back out of one. The derive macros (from
//! the sibling `serde_derive` stub) support structs with named fields and
//! the `#[serde(skip)]` attribute; skipped fields deserialise via
//! `Default`. `serde_json` (also vendored) supplies the text layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like value tree: the interchange format between the `Serialize`
/// and `Deserialize` traits and the `serde_json` text layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialisation / deserialisation error.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected boolean, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error(format!("expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}
