//! Offline stand-in for `serde_json`: renders the vendored `serde::Value`
//! model to JSON text and parses it back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serialises `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to pretty-printed JSON (two-space indents).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse_value(text)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Object(fields) => write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
            let (key, val) = &fields[i];
            write_string(out, key);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, val, indent, depth + 1)
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected , or ] at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected , or }} at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error(format!("bad \\u escape at offset {}", self.pos))
                                })?;
                            // Surrogate pairs are not supported; BMP only.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // slicing at char boundaries is safe via str handling).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| Error(format!("invalid number at offset {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("k\"6\"\n".to_string())),
            ("count".to_string(), Value::Num(42.0)),
            ("ratio".to_string(), Value::Num(0.625)),
            ("ok".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "items".to_string(),
                Value::Array(vec![Value::Num(1.0), Value::Num(-2.5)]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        for text in [
            {
                let mut s = String::new();
                write_value(&mut s, &v, None, 0);
                s
            },
            {
                let mut s = String::new();
                write_value(&mut s, &v, Some(2), 0);
                s
            },
        ] {
            assert_eq!(parse_value(&text).unwrap(), v, "text = {text}");
        }
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<u64> = vec![1, 2, 3, 1 << 40];
        let text = to_string_pretty(&xs).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }
}
