//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::TestRng;

/// A range of collection sizes.
#[derive(Clone, Debug)]
pub struct SizeRange(Range<usize>);

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            !self.size.0.is_empty(),
            "proptest: empty size range {:?} for collection::vec",
            self.size.0
        );
        let len = rng.gen_range(self.size.0.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
