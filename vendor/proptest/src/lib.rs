//! Offline stand-in for the `proptest` crate.
//!
//! Covers the surface this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`boxed`, range and `any::<T>()` strategies, `Just`,
//! [`prop_oneof!`], `collection::vec`, the [`proptest!`] test macro with an
//! optional `#![proptest_config(..)]` header, and the `prop_assert*` macros.
//!
//! Sampling is deterministic (seeded from a hash of the test function name)
//! and there is **no shrinking**: a failing case panics with the standard
//! assertion message, and re-running reproduces it exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG type threaded through all strategies.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Strategy producing an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::Rng;
        rng.gen_range(-1.0e6..1.0e6)
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among the given strategies (all yielding the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` running `body` over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let ($($arg,)+) = $crate::Strategy::sample(&strategies, &mut rng);
                let run = ::std::panic::AssertUnwindSafe(move || { $body });
                if let Err(panic) = ::std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest: property {} failed at case {}/{} (deterministic seed; \
                         re-running reproduces it)",
                        stringify!($name), case + 1, config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
