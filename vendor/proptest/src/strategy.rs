//! The [`Strategy`] trait and its combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::distributions::uniform::SampleUniform;
use rand::Rng;

use crate::{Arbitrary, TestRng};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy for [`any`](crate::any).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies of a common value type.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
