//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for structs with named fields, honouring the
//! `#[serde(skip)]` field attribute (skipped fields are omitted from the
//! output and rebuilt with `Default::default()` on deserialisation) and
//! `#[serde(default)]` (serialised normally, but a missing field falls back
//! to `Default::default()` instead of erroring — schema-evolution support
//! for records written before the field existed).
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are equally unavailable offline), so it intentionally supports
//! only the struct shapes this workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Struct {
    name: String,
    fields: Vec<Field>,
}

/// Parses `struct Name { fields... }` out of the derive input, skipping
/// attributes and visibility, and rejecting shapes we do not support.
fn parse_struct(input: TokenStream) -> Result<Struct, String> {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility until the `struct` keyword.
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => return Err(format!("expected struct name, found {other:?}")),
            },
            Some(TokenTree::Ident(_)) => {} // pub, crate, ...
            Some(TokenTree::Group(_)) => {} // pub(crate)
            Some(other) => return Err(format!("unexpected token {other}")),
            None => return Err("no `struct` keyword in derive input".to_string()),
        }
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("tuple structs are not supported by the vendored serde_derive".into())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("unit structs are not supported by the vendored serde_derive".into())
            }
            Some(_) => {} // generics etc.
            None => return Err("struct has no body".to_string()),
        }
    };

    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field attributes: detect #[serde(skip)] and #[serde(default)].
        let mut skip = false;
        let mut default = false;
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.next() {
                let mut inner = g.stream().into_iter();
                if matches!(&inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        for t in args.stream() {
                            if let TokenTree::Ident(id) = &t {
                                match id.to_string().as_str() {
                                    "skip" => skip = true,
                                    "default" => default = true,
                                    _ => {}
                                }
                            }
                        }
                    }
                }
            }
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found {other}")),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to the next top-level comma. Only `<`/`>`
        // nesting needs tracking: bracketed/parenthesised types arrive as
        // single groups.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(Struct { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (the vendored trait) for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let mut pushes = String::new();
    for field in parsed.fields.iter().filter(|f| !f.skip) {
        pushes.push_str(&format!(
            "fields.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
            field.name, field.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}",
        parsed.name, pushes
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` (the vendored trait) for a named-field
/// struct; `#[serde(skip)]` fields are filled with `Default::default()`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_struct(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for field in &parsed.fields {
        if field.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                field.name
            ));
        } else if field.default {
            inits.push_str(&format!(
                "{}: match value.field({:?}) {{\n\
                     ::std::result::Result::Ok(v) => ::serde::Deserialize::from_value(v)?,\n\
                     ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
                 }},\n",
                field.name, field.name
            ));
        } else {
            inits.push_str(&format!(
                "{}: ::serde::Deserialize::from_value(value.field({:?})?)?,\n",
                field.name, field.name
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({} {{\n{}}})\n\
             }}\n\
         }}",
        parsed.name, parsed.name, inits
    )
    .parse()
    .unwrap()
}
