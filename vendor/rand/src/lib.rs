//! Offline stand-in for the `rand` crate, covering the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`,
//! and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for synthetic-graph generation, but a
//! *different stream* than real rand's ChaCha12-based `StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the single source of entropy.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`; panics unless `p ∈ [0, 1]`
    /// (matching real rand, so invalid probabilities fail loudly here too).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is outside [0.0, 1.0]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for initialising the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// Uniform range sampling traits.
    pub mod uniform {
        use super::super::{unit_f64, Range, RangeInclusive, RngCore};

        /// A type that can be sampled uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Samples uniformly from `[lo, hi)`; panics when `lo >= hi`.
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
            /// Samples uniformly from `[lo, hi]`; panics when `lo > hi`.
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        /// A range type usable with `Rng::gen_range`.
        pub trait SampleRange<T> {
            /// Samples a single value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = self.into_inner();
                T::sample_inclusive(lo, hi, rng)
            }
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo < hi, "gen_range: empty range");
                        let span = (hi as i128 - lo as i128) as u128;
                        // Multiply-shift rejection-free mapping; the modulo
                        // bias is < 2^-64 of the span, irrelevant for tests.
                        let v = (rng.next_u64() as u128 * span) >> 64;
                        (lo as i128 + v as i128) as $t
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo <= hi, "gen_range: empty inclusive range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (rng.next_u64() as u128 * span) >> 64;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }
        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo < hi, "gen_range: empty range");
                        let v = lo + (hi - lo) * unit_f64(rng.next_u64()) as $t;
                        // Rounding (f64→f32, or lo + span·u in f64) can land
                        // exactly on the excluded upper bound; keep the
                        // half-open contract.
                        if v < hi { v } else { lo }
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        assert!(lo <= hi, "gen_range: empty inclusive range");
                        lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
                    }
                }
            )*};
        }
        impl_uniform_float!(f32, f64);
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
